package space

import (
	"fmt"
	"math"
	"math/rand"

	"crowddb/internal/vecmath"
)

// SVDModel is the elementary dot-product factor model of §3.3:
//
//	r̂ = μ + δm + δu + a_m · b_u
//
// It is the collaborative-filtering workhorse, but — as the paper argues —
// its coordinate space has no meaningful item–item distance, which the
// ablation benchmarks quantify.
type SVDModel struct {
	Mu       float64
	ItemBias []float64
	UserBias []float64
	Items    *vecmath.Matrix
	Users    *vecmath.Matrix
}

var _ Model = (*SVDModel)(nil)

// Dims returns the latent dimensionality.
func (m *SVDModel) Dims() int { return m.Items.Cols }

// NumItems returns the number of items.
func (m *SVDModel) NumItems() int { return m.Items.Rows }

// ItemVector returns item i's latent coordinates.
func (m *SVDModel) ItemVector(i int) []float64 { return m.Items.Row(i) }

// Predict estimates r̂ = μ + δm + δu + a·b.
func (m *SVDModel) Predict(item, user int) float64 {
	return m.Mu + m.ItemBias[item] + m.UserBias[user] +
		vecmath.Dot(m.Items.Row(item), m.Users.Row(user))
}

// RMSE computes the model's error on a rating set.
func (m *SVDModel) RMSE(ratings []Rating) float64 {
	return modelRMSE(m, ratings, func(r Rating) float64 { return m.Predict(int(r.Item), int(r.User)) })
}

// TrainSVD fits the dot-product model by SGD with L2 regularization
// (the classic Funk-SVD recipe).
func TrainSVD(data *Dataset, cfg Config) (*SVDModel, TrainStats, error) {
	if err := cfg.validate(); err != nil {
		return nil, TrainStats{}, err
	}
	if err := data.Validate(); err != nil {
		return nil, TrainStats{}, err
	}
	if len(data.Ratings) == 0 {
		return nil, TrainStats{}, fmt.Errorf("space: cannot train on zero ratings")
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	model := &SVDModel{
		Mu:       data.Mean(),
		ItemBias: make([]float64, data.Items),
		UserBias: make([]float64, data.Users),
		Items:    vecmath.NewMatrix(data.Items, cfg.Dims),
		Users:    vecmath.NewMatrix(data.Users, cfg.Dims),
	}
	model.Items.FillRandom(rng, cfg.InitScale/math.Sqrt(float64(cfg.Dims)))
	model.Users.FillRandom(rng, cfg.InitScale/math.Sqrt(float64(cfg.Dims)))

	stats := TrainStats{}
	lr := cfg.LearnRate
	order := make([]int, len(data.Ratings))
	for i := range order {
		order[i] = i
	}
	const clip = 4.0

	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		var sumSq float64
		for _, ri := range order {
			r := data.Ratings[ri]
			mi, ui := int(r.Item), int(r.User)
			a := model.Items.Row(mi)
			b := model.Users.Row(ui)

			pred := model.Mu + model.ItemBias[mi] + model.UserBias[ui] + vecmath.Dot(a, b)
			e := float64(r.Score) - pred
			sumSq += e * e
			e = vecmath.Clamp(e, -clip, clip)

			model.ItemBias[mi] += lr * (e - cfg.Lambda*model.ItemBias[mi])
			model.UserBias[ui] += lr * (e - cfg.Lambda*model.UserBias[ui])
			for k := range a {
				ak, bk := a[k], b[k]
				a[k] += lr * (e*bk - cfg.Lambda*ak)
				b[k] += lr * (e*ak - cfg.Lambda*bk)
			}
		}
		stats.EpochRMSE = append(stats.EpochRMSE, math.Sqrt(sumSq/float64(len(order))))
		lr *= cfg.LearnRateDecay
	}
	return model, stats, nil
}

// TrainSVDALS fits the dot-product model by alternating least squares:
// holding user vectors fixed, each item vector has a closed-form ridge
// solution, and vice versa. Biases are refit in the same alternation.
// ALS is the parallel-friendly alternative the paper alludes to for
// time-critical applications; one Config.Epochs unit is one full
// alternation (items then users).
func TrainSVDALS(data *Dataset, cfg Config) (*SVDModel, TrainStats, error) {
	if err := cfg.validate(); err != nil {
		return nil, TrainStats{}, err
	}
	if err := data.Validate(); err != nil {
		return nil, TrainStats{}, err
	}
	if len(data.Ratings) == 0 {
		return nil, TrainStats{}, fmt.Errorf("space: cannot train on zero ratings")
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	d := cfg.Dims
	model := &SVDModel{
		Mu:       data.Mean(),
		ItemBias: make([]float64, data.Items),
		UserBias: make([]float64, data.Users),
		Items:    vecmath.NewMatrix(data.Items, d),
		Users:    vecmath.NewMatrix(data.Users, d),
	}
	model.Items.FillRandom(rng, cfg.InitScale/math.Sqrt(float64(d)))
	model.Users.FillRandom(rng, cfg.InitScale/math.Sqrt(float64(d)))

	// Index ratings by item and by user.
	byItem := make([][]int, data.Items)
	byUser := make([][]int, data.Users)
	for ri, r := range data.Ratings {
		byItem[r.Item] = append(byItem[r.Item], ri)
		byUser[r.User] = append(byUser[r.User], ri)
	}

	stats := TrainStats{}
	// Ridge parameter: λ scaled by observation count (weighted-λ ALS).
	lam := cfg.Lambda

	// solveRidge solves (XᵀX + λn·I) w = Xᵀy in-place via Gaussian
	// elimination with partial pivoting, where X rows are the counterpart
	// vectors and y the bias-adjusted residual ratings.
	A := vecmath.NewMatrix(d, d)
	rhs := make([]float64, d)
	solve := func(vectors *vecmath.Matrix, ratingIdx []int, other func(Rating) (int, []float64), target []float64, biasSelf []float64, biasOther []float64, self int) {
		n := len(ratingIdx)
		if n == 0 {
			return
		}
		// Refit this entity's bias first: mean residual with shrinkage.
		var biasSum float64
		for _, ri := range ratingIdx {
			r := data.Ratings[ri]
			oi, ov := other(r)
			biasSum += float64(r.Score) - model.Mu - biasOther[oi] - vecmath.Dot(vectors.Row(self), ov)
		}
		biasSelf[self] = biasSum / (float64(n) + lam*float64(n) + 1)

		for i := range A.Data {
			A.Data[i] = 0
		}
		for k := 0; k < d; k++ {
			A.Set(k, k, lam*float64(n)+1e-9)
			rhs[k] = 0
		}
		for _, ri := range ratingIdx {
			r := data.Ratings[ri]
			oi, ov := other(r)
			y := float64(r.Score) - model.Mu - biasSelf[self] - biasOther[oi]
			for i := 0; i < d; i++ {
				rhs[i] += ov[i] * y
				rowA := A.Row(i)
				for j := i; j < d; j++ {
					rowA[j] += ov[i] * ov[j]
				}
			}
		}
		// Mirror the upper triangle.
		for i := 0; i < d; i++ {
			for j := 0; j < i; j++ {
				A.Set(i, j, A.At(j, i))
			}
		}
		w := target
		if !gaussSolve(A, rhs, w) {
			return // singular system: keep previous vector
		}
	}

	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		for mi := 0; mi < data.Items; mi++ {
			solve(model.Items, byItem[mi], func(r Rating) (int, []float64) {
				return int(r.User), model.Users.Row(int(r.User))
			}, model.Items.Row(mi), model.ItemBias, model.UserBias, mi)
		}
		for ui := 0; ui < data.Users; ui++ {
			solve(model.Users, byUser[ui], func(r Rating) (int, []float64) {
				return int(r.Item), model.Items.Row(int(r.Item))
			}, model.Users.Row(ui), model.UserBias, model.ItemBias, ui)
		}
		stats.EpochRMSE = append(stats.EpochRMSE, model.RMSE(data.Ratings))
	}
	return model, stats, nil
}

// gaussSolve solves A·x = b with partial pivoting, writing the solution
// into x. It returns false if A is (numerically) singular. A and b are
// destroyed.
func gaussSolve(A *vecmath.Matrix, b []float64, x []float64) bool {
	n := A.Rows
	for col := 0; col < n; col++ {
		// Pivot.
		pivot := col
		best := math.Abs(A.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := math.Abs(A.At(r, col)); v > best {
				best, pivot = v, r
			}
		}
		if best < 1e-12 {
			return false
		}
		if pivot != col {
			pr, cr := A.Row(pivot), A.Row(col)
			for k := range pr {
				pr[k], cr[k] = cr[k], pr[k]
			}
			b[pivot], b[col] = b[col], b[pivot]
		}
		inv := 1 / A.At(col, col)
		for r := col + 1; r < n; r++ {
			f := A.At(r, col) * inv
			if f == 0 {
				continue
			}
			rr, cr := A.Row(r), A.Row(col)
			for k := col; k < n; k++ {
				rr[k] -= f * cr[k]
			}
			b[r] -= f * b[col]
		}
	}
	for r := n - 1; r >= 0; r-- {
		s := b[r]
		rr := A.Row(r)
		for k := r + 1; k < n; k++ {
			s -= rr[k] * x[k]
		}
		x[r] = s / rr[r]
	}
	return true
}
