package space

import (
	"fmt"
	"math"
	"math/rand"

	"crowddb/internal/vecmath"
)

// TemporalRating is a rating with a normalized timestamp in [0, 1]
// (0 = start of the observation window, 1 = end).
type TemporalRating struct {
	Item  int32
	User  int32
	Score float32
	Time  float32
}

// TemporalDataset is a timestamped rating collection.
type TemporalDataset struct {
	Items   int
	Users   int
	Ratings []TemporalRating
}

// Validate checks index and time bounds.
func (d *TemporalDataset) Validate() error {
	if d.Items <= 0 || d.Users <= 0 {
		return fmt.Errorf("space: temporal dataset needs positive Items and Users")
	}
	for i, r := range d.Ratings {
		if r.Item < 0 || int(r.Item) >= d.Items || r.User < 0 || int(r.User) >= d.Users {
			return fmt.Errorf("space: temporal rating %d out of range", i)
		}
		if r.Time < 0 || r.Time > 1 {
			return fmt.Errorf("space: temporal rating %d has time %v outside [0,1]", i, r.Time)
		}
	}
	return nil
}

// Static drops the timestamps, for training a time-blind baseline.
func (d *TemporalDataset) Static() *Dataset {
	out := &Dataset{Items: d.Items, Users: d.Users, Ratings: make([]Rating, len(d.Ratings))}
	for i, r := range d.Ratings {
		out.Ratings[i] = Rating{Item: r.Item, User: r.User, Score: r.Score}
	}
	return out
}

// Mean returns the global mean rating.
func (d *TemporalDataset) Mean() float64 {
	if len(d.Ratings) == 0 {
		return 0
	}
	var s float64
	for _, r := range d.Ratings {
		s += float64(r.Score)
	}
	return s / float64(len(d.Ratings))
}

// TemporalModel implements the paper's §5 "changing taste over time"
// extension (its reference [24], Koren's temporal dynamics, in its
// simplest binned form): the user bias becomes time-dependent,
//
//	r̂(m, u, t) = μ + δm + δu + δ_{u, bin(t)} − ‖a_m − b_u‖²
//
// so a user whose rating level drifts (harsher over time, a rating-scale
// reinterpretation, …) no longer smears the item geometry.
type TemporalModel struct {
	Mu       float64
	ItemBias []float64
	UserBias []float64
	// UserBinBias is nUsers × Bins, row-major.
	UserBinBias []float64
	Bins        int
	Items       *vecmath.Matrix
	Users       *vecmath.Matrix
}

var _ Model = (*TemporalModel)(nil)

// Dims returns the space dimensionality.
func (m *TemporalModel) Dims() int { return m.Items.Cols }

// NumItems returns the number of items.
func (m *TemporalModel) NumItems() int { return m.Items.Rows }

// ItemVector returns item i's coordinates.
func (m *TemporalModel) ItemVector(i int) []float64 { return m.Items.Row(i) }

func (m *TemporalModel) bin(t float64) int {
	b := int(t * float64(m.Bins))
	if b >= m.Bins {
		b = m.Bins - 1
	}
	if b < 0 {
		b = 0
	}
	return b
}

// PredictAt estimates the rating at normalized time t.
func (m *TemporalModel) PredictAt(item, user int, t float64) float64 {
	return m.Mu + m.ItemBias[item] + m.UserBias[user] +
		m.UserBinBias[user*m.Bins+m.bin(t)] -
		vecmath.SqDist(m.Items.Row(item), m.Users.Row(user))
}

// Predict implements Model using the window midpoint; use PredictAt for
// time-aware predictions.
func (m *TemporalModel) Predict(item, user int) float64 {
	return m.PredictAt(item, user, 0.5)
}

// RMSE computes the time-aware error over a temporal rating set.
func (m *TemporalModel) RMSE(ratings []TemporalRating) float64 {
	if len(ratings) == 0 {
		return 0
	}
	var s float64
	for _, r := range ratings {
		e := float64(r.Score) - m.PredictAt(int(r.Item), int(r.User), float64(r.Time))
		s += e * e
	}
	return math.Sqrt(s / float64(len(ratings)))
}

// TrainTemporal fits the temporal Euclidean-embedding model by SGD.
// bins is the number of time bins per user (default 4 when <= 0).
func TrainTemporal(data *TemporalDataset, cfg Config, bins int) (*TemporalModel, TrainStats, error) {
	if err := cfg.validate(); err != nil {
		return nil, TrainStats{}, err
	}
	if err := data.Validate(); err != nil {
		return nil, TrainStats{}, err
	}
	if len(data.Ratings) == 0 {
		return nil, TrainStats{}, fmt.Errorf("space: cannot train on zero ratings")
	}
	if bins <= 0 {
		bins = 4
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	model := &TemporalModel{
		Mu:          data.Mean(),
		ItemBias:    make([]float64, data.Items),
		UserBias:    make([]float64, data.Users),
		UserBinBias: make([]float64, data.Users*bins),
		Bins:        bins,
		Items:       vecmath.NewMatrix(data.Items, cfg.Dims),
		Users:       vecmath.NewMatrix(data.Users, cfg.Dims),
	}
	model.Items.FillRandom(rng, cfg.InitScale/math.Sqrt(float64(cfg.Dims)))
	model.Users.FillRandom(rng, cfg.InitScale/math.Sqrt(float64(cfg.Dims)))

	stats := TrainStats{}
	lr := cfg.LearnRate
	const clip = 4.0
	order := make([]int, len(data.Ratings))
	for i := range order {
		order[i] = i
	}

	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		var sumSq float64
		for _, ri := range order {
			r := data.Ratings[ri]
			mi, ui := int(r.Item), int(r.User)
			bi := ui*bins + model.bin(float64(r.Time))
			a := model.Items.Row(mi)
			b := model.Users.Row(ui)

			d2 := vecmath.SqDist(a, b)
			pred := model.Mu + model.ItemBias[mi] + model.UserBias[ui] + model.UserBinBias[bi] - d2
			e := float64(r.Score) - pred
			sumSq += e * e
			e = vecmath.Clamp(e, -clip, clip)

			model.ItemBias[mi] += lr * (e - cfg.Lambda*model.ItemBias[mi])
			model.UserBias[ui] += lr * (e - cfg.Lambda*model.UserBias[ui])
			// The bin offset gets stronger shrinkage: it must capture
			// drift, not absorb the stationary part of the bias.
			model.UserBinBias[bi] += lr * (e - 5*cfg.Lambda*model.UserBinBias[bi])

			g := lr * (e + cfg.Lambda*d2)
			for k := range a {
				diff := a[k] - b[k]
				a[k] -= g * diff
				b[k] += g * diff
			}
		}
		stats.EpochRMSE = append(stats.EpochRMSE, math.Sqrt(sumSq/float64(len(order))))
		lr *= cfg.LearnRateDecay
	}
	return model, stats, nil
}
