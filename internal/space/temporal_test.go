package space

import (
	"math"
	"math/rand"
	"testing"

	"crowddb/internal/vecmath"
)

// driftWorld generates ratings from users whose rating level drifts over
// the observation window (e.g. increasingly harsh critics), on top of the
// usual latent geometry.
func driftWorld(nItems, nUsers, perUser int, seed int64) *TemporalDataset {
	rng := rand.New(rand.NewSource(seed))
	const dims = 3
	itemPos := vecmath.NewMatrix(nItems, dims)
	itemPos.FillRandom(rng, 2.0)
	userPos := vecmath.NewMatrix(nUsers, dims)
	userPos.FillRandom(rng, 2.0)

	var ratings []TemporalRating
	for u := 0; u < nUsers; u++ {
		// Drift of up to ±1.5 stars across the window.
		drift := (rng.Float64()*2 - 1) * 1.5
		seen := map[int]bool{}
		for n := 0; n < perUser; n++ {
			m := rng.Intn(nItems)
			if seen[m] {
				continue
			}
			seen[m] = true
			tt := rng.Float64()
			d2 := vecmath.SqDist(itemPos.Row(m), userPos.Row(u))
			score := 4.2 - 0.12*d2 + drift*(tt-0.5) + rng.NormFloat64()*0.2
			ratings = append(ratings, TemporalRating{
				Item: int32(m), User: int32(u),
				Score: float32(vecmath.Clamp(score, 1, 5)),
				Time:  float32(tt),
			})
		}
	}
	return &TemporalDataset{Items: nItems, Users: nUsers, Ratings: ratings}
}

func TestTemporalValidate(t *testing.T) {
	good := driftWorld(10, 10, 5, 1)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := &TemporalDataset{Items: 2, Users: 2, Ratings: []TemporalRating{{Item: 5}}}
	if err := bad.Validate(); err == nil {
		t.Fatal("bad item must fail")
	}
	bad = &TemporalDataset{Items: 2, Users: 2, Ratings: []TemporalRating{{Time: 1.5}}}
	if err := bad.Validate(); err == nil {
		t.Fatal("time > 1 must fail")
	}
	if err := (&TemporalDataset{}).Validate(); err == nil {
		t.Fatal("zero shape must fail")
	}
}

func TestTemporalBeatsStaticOnDriftingUsers(t *testing.T) {
	data := driftWorld(100, 150, 40, 51)
	cfg := smallConfig()
	cfg.Dims = 6
	cfg.Epochs = 30

	static, _, err := TrainEuclidean(data.Static(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	temporal, _, err := TrainTemporal(data, cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Static model evaluated time-blind; temporal evaluated time-aware.
	staticRMSE := static.RMSE(data.Static().Ratings)
	temporalRMSE := temporal.RMSE(data.Ratings)
	if temporalRMSE >= staticRMSE*0.95 {
		t.Fatalf("temporal RMSE %.4f should clearly beat static %.4f on drifting users",
			temporalRMSE, staticRMSE)
	}
}

func TestTemporalBinBoundaries(t *testing.T) {
	m := &TemporalModel{Bins: 4}
	cases := map[float64]int{0: 0, 0.24: 0, 0.25: 1, 0.5: 2, 0.99: 3, 1.0: 3}
	for tt, want := range cases {
		if got := m.bin(tt); got != want {
			t.Errorf("bin(%v) = %d, want %d", tt, got, want)
		}
	}
}

func TestTemporalModelInterface(t *testing.T) {
	data := driftWorld(40, 50, 15, 52)
	cfg := smallConfig()
	cfg.Dims = 4
	cfg.Epochs = 10
	m, stats, err := TrainTemporal(data, cfg, 0) // default bins
	if err != nil {
		t.Fatal(err)
	}
	if m.Bins != 4 {
		t.Fatalf("default bins = %d", m.Bins)
	}
	if stats.FinalRMSE() >= stats.EpochRMSE[0] {
		t.Fatal("training did not improve")
	}
	p := m.Predict(0, 0)
	if math.IsNaN(p) {
		t.Fatal("NaN prediction")
	}
	// The item space snapshot works for classifiers as usual.
	sp := FromModel(m)
	if sp.NumItems() != 40 || sp.Dims() != 4 {
		t.Fatal("FromModel broken for temporal model")
	}
	// Time-aware predictions differ across bins for a drifting user.
	diff := math.Abs(m.PredictAt(0, 0, 0.05) - m.PredictAt(0, 0, 0.95))
	var anyDrift bool
	for u := 0; u < 50 && !anyDrift; u++ {
		if math.Abs(m.PredictAt(0, u, 0.05)-m.PredictAt(0, u, 0.95)) > 0.2 {
			anyDrift = true
		}
	}
	_ = diff
	if !anyDrift {
		t.Fatal("no user shows temporal drift; bin biases did not train")
	}
}

func TestTemporalValidationErrors(t *testing.T) {
	data := driftWorld(10, 10, 4, 53)
	bad := smallConfig()
	bad.Dims = 0
	if _, _, err := TrainTemporal(data, bad, 4); err == nil {
		t.Fatal("bad config must fail")
	}
	empty := &TemporalDataset{Items: 2, Users: 2}
	if _, _, err := TrainTemporal(empty, smallConfig(), 4); err == nil {
		t.Fatal("empty must fail")
	}
	if (&TemporalDataset{Items: 1, Users: 1}).Mean() != 0 {
		t.Fatal("empty Mean must be 0")
	}
}
