package sqlparse

import (
	"fmt"
	"strings"
)

// Statement is any parsed SQL statement.
type Statement interface{ stmt() }

// Expr is any scalar expression node.
type Expr interface {
	expr()
	// String renders the expression approximately as SQL, for error
	// messages and EXPLAIN-style output.
	String() string
}

// ---------- Expressions ----------

// LiteralKind identifies the type of a literal.
type LiteralKind uint8

const (
	LitNull LiteralKind = iota
	LitBool
	LitInt
	LitFloat
	LitString
)

// Literal is a constant value in the query text.
type Literal struct {
	Kind  LiteralKind
	Bool  bool
	Int   int64
	Float float64
	Str   string
}

func (*Literal) expr() {}

func (l *Literal) String() string {
	switch l.Kind {
	case LitNull:
		return "NULL"
	case LitBool:
		if l.Bool {
			return "true"
		}
		return "false"
	case LitInt:
		return fmt.Sprintf("%d", l.Int)
	case LitFloat:
		return fmt.Sprintf("%g", l.Float)
	case LitString:
		return "'" + strings.ReplaceAll(l.Str, "'", "''") + "'"
	default:
		return "?"
	}
}

// ColumnRef references a column by name, optionally qualified by a table
// name or alias (`movies.year`). An empty Table means the reference is
// unqualified and resolves against every table in scope.
type ColumnRef struct {
	Table string
	Name  string
}

func (*ColumnRef) expr() {}
func (c *ColumnRef) String() string {
	if c.Table != "" {
		return c.Table + "." + c.Name
	}
	return c.Name
}

// BinaryExpr applies an infix operator: comparison (=, !=, <, <=, >, >=),
// logic (AND, OR) or arithmetic (+, -, *, /).
type BinaryExpr struct {
	Op          string
	Left, Right Expr
}

func (*BinaryExpr) expr() {}
func (b *BinaryExpr) String() string {
	return fmt.Sprintf("(%s %s %s)", b.Left.String(), b.Op, b.Right.String())
}

// UnaryExpr applies NOT or unary minus.
type UnaryExpr struct {
	Op   string // "NOT" or "-"
	Expr Expr
}

func (*UnaryExpr) expr() {}
func (u *UnaryExpr) String() string {
	if u.Op == "NOT" {
		return fmt.Sprintf("(NOT %s)", u.Expr.String())
	}
	return fmt.Sprintf("(-%s)", u.Expr.String())
}

// IsNullExpr is `expr IS [NOT] NULL`.
type IsNullExpr struct {
	Expr   Expr
	Negate bool
}

func (*IsNullExpr) expr() {}
func (e *IsNullExpr) String() string {
	if e.Negate {
		return fmt.Sprintf("(%s IS NOT NULL)", e.Expr.String())
	}
	return fmt.Sprintf("(%s IS NULL)", e.Expr.String())
}

// ---------- SELECT ----------

// AggFunc names an aggregate function, or empty for a plain expression.
type AggFunc string

const (
	AggNone  AggFunc = ""
	AggCount AggFunc = "COUNT"
	AggSum   AggFunc = "SUM"
	AggAvg   AggFunc = "AVG"
	AggMin   AggFunc = "MIN"
	AggMax   AggFunc = "MAX"
)

// SelectItem is one entry of the select list.
type SelectItem struct {
	Star bool    // SELECT *
	Agg  AggFunc // aggregate function, AggNone for scalar expressions
	// Expr is the argument. nil for COUNT(*) and for Star items.
	Expr  Expr
	Alias string
}

// OrderKey is one ORDER BY entry.
type OrderKey struct {
	Expr Expr
	Desc bool
}

// JoinClause is one `[INNER] JOIN table [alias] ON cond` clause. Only
// inner joins are supported; the planner extracts equi-join keys from the
// ON condition and evaluates the rest as a residual filter.
type JoinClause struct {
	Table string
	Alias string // empty when the table name itself is the binding
	On    Expr
}

// SelectStmt is a SELECT over one table, optionally inner-joined with
// more tables.
type SelectStmt struct {
	Items    []SelectItem
	Distinct bool
	// Table is the primary FROM table; TableAlias is its optional
	// binding name (empty = the table name).
	Table      string
	TableAlias string
	Joins      []JoinClause
	Where      Expr   // nil when absent
	GroupBy    []Expr // nil when absent
	// Having filters grouped output rows; it may reference select-list
	// aliases and group columns (not raw aggregate calls).
	Having  Expr
	OrderBy []OrderKey // nil when absent
	Limit   int64      // -1 when absent
}

func (*SelectStmt) stmt() {}

// ---------- CREATE TABLE ----------

// ColumnDef is a column definition in CREATE TABLE.
type ColumnDef struct {
	Name       string
	Type       string // normalized: INTEGER, FLOAT, TEXT, BOOLEAN
	Perceptual bool
}

// CreateTableStmt is CREATE TABLE name (cols…).
type CreateTableStmt struct {
	Table   string
	Columns []ColumnDef
}

func (*CreateTableStmt) stmt() {}

// ---------- INSERT ----------

// InsertStmt is INSERT INTO name [(cols…)] VALUES (…), (…).
type InsertStmt struct {
	Table   string
	Columns []string // nil means "all columns in schema order"
	Rows    [][]Expr
}

func (*InsertStmt) stmt() {}

// ---------- UPDATE / DELETE / DROP ----------

// Assignment is one SET column = expr clause.
type Assignment struct {
	Column string
	Expr   Expr
}

// UpdateStmt is UPDATE name SET … [WHERE …].
type UpdateStmt struct {
	Table string
	Set   []Assignment
	Where Expr
}

func (*UpdateStmt) stmt() {}

// DeleteStmt is DELETE FROM name [WHERE …].
type DeleteStmt struct {
	Table string
	Where Expr
}

func (*DeleteStmt) stmt() {}

// DropTableStmt is DROP TABLE name.
type DropTableStmt struct{ Table string }

func (*DropTableStmt) stmt() {}

// DropIndexStmt is DROP INDEX name ON table. The table is mandatory:
// index names are unique per table, not globally, so naming the table
// keeps the statement unambiguous without a catalog-wide index registry.
type DropIndexStmt struct {
	Name  string
	Table string
}

func (*DropIndexStmt) stmt() {}

// ---------- CREATE INDEX ----------

// IndexCol is one key column of a CREATE INDEX, with its direction.
type IndexCol struct {
	Name string
	Desc bool
}

// CreateIndexStmt is the secondary-index DDL:
//
//	CREATE INDEX idx_year ON movies (year)              -- ordered (default)
//	CREATE INDEX idx_id   ON movies (movie_id) USING HASH
//	CREATE INDEX idx_gy   ON movies (genre, year DESC)  -- composite, mixed dirs
//
// Ordered indexes answer equality and range predicates (and index-ordered
// scans, honoring per-column ASC/DESC); hash indexes answer full-key
// equality only, in O(1). Every column must already exist in the schema —
// indexing a registered-but-not-yet-expanded column is rejected by the
// crowd-enabled layer with a typed error.
type CreateIndexStmt struct {
	Name    string
	Table   string
	Columns []IndexCol
	// Column is the first key column — kept for single-column callers.
	Column string
	// Kind is "hash" or "ordered" (the default when USING is absent).
	Kind string
}

func (*CreateIndexStmt) stmt() {}

// ---------- EXPAND (schema expansion DDL) ----------

// ExpandMethod selects the fill strategy for an explicit EXPAND statement.
type ExpandMethod string

const (
	ExpandCrowd  ExpandMethod = "CROWD"  // direct crowd-sourcing per tuple
	ExpandSpace  ExpandMethod = "SPACE"  // perceptual-space extraction
	ExpandHybrid ExpandMethod = "HYBRID" // crowd + space-based cleaning
)

// ExpandStmt is the explicit form of query-driven schema expansion:
//
//	EXPAND TABLE movies ADD COLUMN is_comedy BOOLEAN PERCEPTUAL
//	    USING SPACE WITH SAMPLES 40
//
// Implicit expansion (a SELECT referencing an unknown column) is resolved
// by the engine layer and rewritten into the same internal operation.
type ExpandStmt struct {
	Table   string
	Column  ColumnDef
	Method  ExpandMethod
	Samples int64   // WITH SAMPLES n: training examples per class; 0 = default
	Budget  float64 // WITH BUDGET x: max dollars to spend; 0 = unlimited
}

func (*ExpandStmt) stmt() {}

// ---------- EXPLAIN ----------

// ExplainStmt is `EXPLAIN <statement>`: the wrapped statement is planned
// but not executed, and the plan tree is returned as the result rows.
type ExplainStmt struct {
	Stmt Statement
	// Analyze marks EXPLAIN ANALYZE: the statement is actually executed
	// and the rendered plan is annotated with per-operator actuals.
	Analyze bool
}

func (*ExplainStmt) stmt() {}

// WalkColumns calls f for every ColumnRef in the expression tree.
// The engine uses it to discover which columns a query touches, which is
// how implicit schema expansion is triggered.
func WalkColumns(e Expr, f func(*ColumnRef)) {
	switch n := e.(type) {
	case nil:
	case *ColumnRef:
		f(n)
	case *BinaryExpr:
		WalkColumns(n.Left, f)
		WalkColumns(n.Right, f)
	case *UnaryExpr:
		WalkColumns(n.Expr, f)
	case *IsNullExpr:
		WalkColumns(n.Expr, f)
	case *Literal:
	}
}
