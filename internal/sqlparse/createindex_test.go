package sqlparse

import (
	"reflect"
	"strings"
	"testing"
)

func TestParseCreateIndex(t *testing.T) {
	cases := []struct {
		sql  string
		want CreateIndexStmt
	}{
		{`CREATE INDEX idx_year ON movies (year)`,
			CreateIndexStmt{Name: "idx_year", Table: "movies",
				Columns: []IndexCol{{Name: "year"}}, Column: "year", Kind: "ordered"}},
		{`create index i1 on t (c) using hash`,
			CreateIndexStmt{Name: "i1", Table: "t",
				Columns: []IndexCol{{Name: "c"}}, Column: "c", Kind: "hash"}},
		{`CREATE INDEX i1 ON t (c) USING ORDERED;`,
			CreateIndexStmt{Name: "i1", Table: "t",
				Columns: []IndexCol{{Name: "c"}}, Column: "c", Kind: "ordered"}},
		{`CREATE INDEX gy ON movies (genre, year DESC)`,
			CreateIndexStmt{Name: "gy", Table: "movies",
				Columns: []IndexCol{{Name: "genre"}, {Name: "year", Desc: true}},
				Column:  "genre", Kind: "ordered"}},
		{`CREATE INDEX abc ON t (a ASC, b DESC, c) USING HASH`,
			CreateIndexStmt{Name: "abc", Table: "t",
				Columns: []IndexCol{{Name: "a"}, {Name: "b", Desc: true}, {Name: "c"}},
				Column:  "a", Kind: "hash"}},
	}
	for _, c := range cases {
		stmt, err := Parse(c.sql)
		if err != nil {
			t.Fatalf("%s: %v", c.sql, err)
		}
		got, ok := stmt.(*CreateIndexStmt)
		if !ok {
			t.Fatalf("%s: parsed %T", c.sql, stmt)
		}
		if !reflect.DeepEqual(*got, c.want) {
			t.Fatalf("%s: got %+v, want %+v", c.sql, *got, c.want)
		}
	}
}

func TestParseCreateIndexErrors(t *testing.T) {
	cases := []struct {
		sql     string
		wantErr string
	}{
		{`CREATE INDEX ON t (c)`, "expected identifier"},
		{`CREATE INDEX i ON t ()`, "expected identifier"},
		{`CREATE INDEX i ON t (a, )`, "expected identifier"},
		{`CREATE INDEX i ON t (c) USING btree`, "expected HASH or ORDERED"},
		{`CREATE INDEX i ON t`, `expected "("`},
	}
	for _, c := range cases {
		_, err := Parse(c.sql)
		if err == nil || !strings.Contains(err.Error(), c.wantErr) {
			t.Fatalf("%s: err = %v, want substring %q", c.sql, err, c.wantErr)
		}
	}
}

func TestParseDropIndex(t *testing.T) {
	cases := []struct {
		sql  string
		want DropIndexStmt
	}{
		{`DROP INDEX idx_year ON movies`, DropIndexStmt{Name: "idx_year", Table: "movies"}},
		{`drop index i1 on t;`, DropIndexStmt{Name: "i1", Table: "t"}},
	}
	for _, c := range cases {
		stmt, err := Parse(c.sql)
		if err != nil {
			t.Fatalf("%s: %v", c.sql, err)
		}
		got, ok := stmt.(*DropIndexStmt)
		if !ok {
			t.Fatalf("%s: parsed %T", c.sql, stmt)
		}
		if *got != c.want {
			t.Fatalf("%s: got %+v, want %+v", c.sql, *got, c.want)
		}
	}
}

func TestParseDropIndexErrors(t *testing.T) {
	cases := []struct {
		sql     string
		wantErr string
	}{
		{`DROP INDEX ON movies`, "expected identifier"},
		{`DROP INDEX i`, "expected ON"},
		{`DROP INDEX i ON`, "expected identifier"},
	}
	for _, c := range cases {
		_, err := Parse(c.sql)
		if err == nil || !strings.Contains(err.Error(), c.wantErr) {
			t.Fatalf("%s: err = %v, want substring %q", c.sql, err, c.wantErr)
		}
	}
}

// TestCreateTableStillParses guards the CREATE dispatch split.
func TestCreateTableStillParses(t *testing.T) {
	stmt, err := Parse(`CREATE TABLE t (a INTEGER, b TEXT)`)
	if err != nil {
		t.Fatal(err)
	}
	ct, ok := stmt.(*CreateTableStmt)
	if !ok || ct.Table != "t" || len(ct.Columns) != 2 {
		t.Fatalf("parsed %#v", stmt)
	}
}
