package sqlparse

import "testing"

func TestParseQualifiedColumnRef(t *testing.T) {
	stmt, err := Parse(`SELECT m.name FROM movies m WHERE m.year > 1980`)
	if err != nil {
		t.Fatal(err)
	}
	sel := stmt.(*SelectStmt)
	ref, ok := sel.Items[0].Expr.(*ColumnRef)
	if !ok || ref.Table != "m" || ref.Name != "name" {
		t.Fatalf("item = %#v", sel.Items[0].Expr)
	}
	if sel.Table != "movies" || sel.TableAlias != "m" {
		t.Fatalf("from = %q alias %q", sel.Table, sel.TableAlias)
	}
	if ref.String() != "m.name" {
		t.Fatalf("String() = %q", ref.String())
	}
}

func TestParseJoin(t *testing.T) {
	stmt, err := Parse(`SELECT a.x, b.y FROM a JOIN b ON a.id = b.aid
		INNER JOIN c cc ON b.id = cc.bid AND cc.kind = 'k'
		WHERE a.x > 0 ORDER BY b.y LIMIT 5`)
	if err != nil {
		t.Fatal(err)
	}
	sel := stmt.(*SelectStmt)
	if len(sel.Joins) != 2 {
		t.Fatalf("joins = %d", len(sel.Joins))
	}
	j0 := sel.Joins[0]
	if j0.Table != "b" || j0.Alias != "" {
		t.Fatalf("join0 = %+v", j0)
	}
	if j0.On.String() != "(a.id = b.aid)" {
		t.Fatalf("on0 = %s", j0.On.String())
	}
	j1 := sel.Joins[1]
	if j1.Table != "c" || j1.Alias != "cc" {
		t.Fatalf("join1 = %+v", j1)
	}
	if sel.Limit != 5 || len(sel.OrderBy) != 1 {
		t.Fatalf("tail clauses: limit=%d orderBy=%d", sel.Limit, len(sel.OrderBy))
	}
}

func TestParseJoinErrors(t *testing.T) {
	for _, sql := range []string{
		`SELECT * FROM a JOIN`,             // missing table
		`SELECT * FROM a JOIN b`,           // missing ON
		`SELECT * FROM a JOIN b ON`,        // missing condition
		`SELECT * FROM a INNER b ON a = b`, // INNER without JOIN
	} {
		if _, err := Parse(sql); err == nil {
			t.Errorf("%q must fail", sql)
		}
	}
}

func TestParseExplain(t *testing.T) {
	stmt, err := Parse(`EXPLAIN SELECT name FROM movies WHERE year > 1980`)
	if err != nil {
		t.Fatal(err)
	}
	ex, ok := stmt.(*ExplainStmt)
	if !ok {
		t.Fatalf("stmt = %T", stmt)
	}
	if _, ok := ex.Stmt.(*SelectStmt); !ok {
		t.Fatalf("inner = %T", ex.Stmt)
	}
	// Any statement can be wrapped; nesting cannot.
	if _, err := Parse(`EXPLAIN DELETE FROM movies`); err != nil {
		t.Fatalf("EXPLAIN DELETE: %v", err)
	}
	if _, err := Parse(`EXPLAIN EXPLAIN SELECT * FROM t`); err == nil {
		t.Fatal("nested EXPLAIN must fail")
	}
}

// Qualified references round-trip through String() like every other
// expression (extends the property test in roundtrip_test.go to the new
// syntax).
func TestQualifiedRefRoundTrip(t *testing.T) {
	exprs := []Expr{
		&BinaryExpr{Op: "=", Left: &ColumnRef{Table: "a", Name: "id"}, Right: &ColumnRef{Table: "b", Name: "aid"}},
		&BinaryExpr{Op: "+", Left: &ColumnRef{Table: "t", Name: "x"}, Right: &Literal{Kind: LitInt, Int: 1}},
		&IsNullExpr{Expr: &ColumnRef{Table: "m", Name: "flag"}},
	}
	for _, e := range exprs {
		text := e.String()
		stmt, err := Parse("SELECT * FROM t WHERE " + text)
		if err != nil {
			t.Fatalf("re-parse of %q: %v", text, err)
		}
		again := stmt.(*SelectStmt).Where.String()
		if again != text {
			t.Fatalf("round-trip mismatch: %q → %q", text, again)
		}
	}
}

// A full JOIN statement re-parses structurally: same tables, aliases and
// ON text.
func TestJoinStatementRoundTrip(t *testing.T) {
	sql := `SELECT m.name, c.role FROM movies m JOIN credits c ON m.movie_id = c.movie WHERE m.year >= 1995 ORDER BY m.year DESC LIMIT 3`
	s1, err := Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	sel := s1.(*SelectStmt)
	rebuilt := `SELECT m.name, c.role FROM movies m JOIN credits c ON ` + sel.Joins[0].On.String() +
		` WHERE ` + sel.Where.String() + ` ORDER BY m.year DESC LIMIT 3`
	s2, err := Parse(rebuilt)
	if err != nil {
		t.Fatalf("re-parse %q: %v", rebuilt, err)
	}
	sel2 := s2.(*SelectStmt)
	if sel2.Joins[0].On.String() != sel.Joins[0].On.String() || sel2.Where.String() != sel.Where.String() {
		t.Fatalf("round trip drifted: %s vs %s", sel2.Joins[0].On.String(), sel.Joins[0].On.String())
	}
}
