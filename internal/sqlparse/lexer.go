package sqlparse

import (
	"fmt"
	"strings"
	"unicode"
)

// Lexer turns SQL text into a token stream.
type Lexer struct {
	input string
	pos   int
}

// NewLexer returns a lexer over input.
func NewLexer(input string) *Lexer { return &Lexer{input: input} }

// Tokenize scans the whole input and returns the tokens followed by a
// final EOF token.
func Tokenize(input string) ([]Token, error) {
	lx := NewLexer(input)
	var toks []Token
	for {
		tok, err := lx.Next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, tok)
		if tok.Type == TokEOF {
			return toks, nil
		}
	}
}

func (lx *Lexer) peekByte() (byte, bool) {
	if lx.pos >= len(lx.input) {
		return 0, false
	}
	return lx.input[lx.pos], true
}

func isIdentStart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c))
}

func isIdentPart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c))
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// Next returns the next token.
func (lx *Lexer) Next() (Token, error) {
	lx.skipSpaceAndComments()
	start := lx.pos
	c, ok := lx.peekByte()
	if !ok {
		return Token{Type: TokEOF, Pos: start}, nil
	}

	switch {
	case isIdentStart(c):
		return lx.lexWord(start), nil
	case isDigit(c) || (c == '.' && lx.pos+1 < len(lx.input) && isDigit(lx.input[lx.pos+1])):
		return lx.lexNumber(start)
	case c == '\'':
		return lx.lexString(start)
	default:
		return lx.lexSymbol(start)
	}
}

func (lx *Lexer) skipSpaceAndComments() {
	for lx.pos < len(lx.input) {
		c := lx.input[lx.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			lx.pos++
		case c == '-' && lx.pos+1 < len(lx.input) && lx.input[lx.pos+1] == '-':
			for lx.pos < len(lx.input) && lx.input[lx.pos] != '\n' {
				lx.pos++
			}
		default:
			return
		}
	}
}

func (lx *Lexer) lexWord(start int) Token {
	for lx.pos < len(lx.input) && isIdentPart(lx.input[lx.pos]) {
		lx.pos++
	}
	text := lx.input[start:lx.pos]
	upper := strings.ToUpper(text)
	if IsKeyword(upper) {
		return Token{Type: TokKeyword, Text: upper, Pos: start}
	}
	return Token{Type: TokIdent, Text: text, Pos: start}
}

func (lx *Lexer) lexNumber(start int) (Token, error) {
	seenDot, seenExp := false, false
	for lx.pos < len(lx.input) {
		c := lx.input[lx.pos]
		switch {
		case isDigit(c):
			lx.pos++
		case c == '.' && !seenDot && !seenExp:
			seenDot = true
			lx.pos++
		case (c == 'e' || c == 'E') && !seenExp && lx.pos > start:
			seenExp = true
			lx.pos++
			if lx.pos < len(lx.input) && (lx.input[lx.pos] == '+' || lx.input[lx.pos] == '-') {
				lx.pos++
			}
			if lx.pos >= len(lx.input) || !isDigit(lx.input[lx.pos]) {
				return Token{}, fmt.Errorf("sqlparse: malformed exponent at offset %d", lx.pos)
			}
		default:
			goto done
		}
	}
done:
	text := lx.input[start:lx.pos]
	if lx.pos < len(lx.input) && isIdentStart(lx.input[lx.pos]) {
		return Token{}, fmt.Errorf("sqlparse: malformed number %q at offset %d", text, start)
	}
	return Token{Type: TokNumber, Text: text, Pos: start}, nil
}

func (lx *Lexer) lexString(start int) (Token, error) {
	lx.pos++ // opening quote
	var sb strings.Builder
	for lx.pos < len(lx.input) {
		c := lx.input[lx.pos]
		if c == '\'' {
			// '' escapes a single quote, SQL style.
			if lx.pos+1 < len(lx.input) && lx.input[lx.pos+1] == '\'' {
				sb.WriteByte('\'')
				lx.pos += 2
				continue
			}
			lx.pos++
			return Token{Type: TokString, Text: sb.String(), Pos: start}, nil
		}
		sb.WriteByte(c)
		lx.pos++
	}
	return Token{}, fmt.Errorf("sqlparse: unterminated string starting at offset %d", start)
}

func (lx *Lexer) lexSymbol(start int) (Token, error) {
	two := ""
	if lx.pos+2 <= len(lx.input) {
		two = lx.input[lx.pos : lx.pos+2]
	}
	switch two {
	case "<=", ">=", "!=", "<>":
		lx.pos += 2
		if two == "<>" {
			two = "!="
		}
		return Token{Type: TokSymbol, Text: two, Pos: start}, nil
	}
	c := lx.input[lx.pos]
	switch c {
	case '(', ')', ',', '=', '<', '>', '+', '-', '*', '/', ';', '.':
		lx.pos++
		return Token{Type: TokSymbol, Text: string(c), Pos: start}, nil
	}
	return Token{}, fmt.Errorf("sqlparse: unexpected character %q at offset %d", c, start)
}
