package sqlparse

import (
	"strings"
	"testing"
)

func tokenTexts(t *testing.T, input string) []string {
	t.Helper()
	toks, err := Tokenize(input)
	if err != nil {
		t.Fatalf("Tokenize(%q): %v", input, err)
	}
	var out []string
	for _, tok := range toks {
		if tok.Type == TokEOF {
			break
		}
		out = append(out, tok.Text)
	}
	return out
}

func TestTokenizeBasicQuery(t *testing.T) {
	got := tokenTexts(t, "SELECT name FROM movies WHERE humor >= 8")
	want := []string{"SELECT", "name", "FROM", "movies", "WHERE", "humor", ">=", "8"}
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Fatalf("tokens = %v, want %v", got, want)
	}
}

func TestKeywordsAreUppercasedIdentsAreNot(t *testing.T) {
	toks, err := Tokenize("select Name from Movies")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Type != TokKeyword || toks[0].Text != "SELECT" {
		t.Fatalf("first token = %+v", toks[0])
	}
	if toks[1].Type != TokIdent || toks[1].Text != "Name" {
		t.Fatalf("second token = %+v", toks[1])
	}
}

func TestTokenizeNumbers(t *testing.T) {
	cases := map[string]string{
		"42":      "42",
		"3.14":    "3.14",
		".5":      ".5",
		"1e3":     "1e3",
		"2.5E-2":  "2.5E-2",
		"1.25e+4": "1.25e+4",
	}
	for in, want := range cases {
		toks, err := Tokenize(in)
		if err != nil {
			t.Fatalf("Tokenize(%q): %v", in, err)
		}
		if toks[0].Type != TokNumber || toks[0].Text != want {
			t.Errorf("Tokenize(%q) = %+v, want number %q", in, toks[0], want)
		}
	}
}

func TestTokenizeBadNumbers(t *testing.T) {
	for _, in := range []string{"1e", "1e+", "12abc"} {
		if _, err := Tokenize(in); err == nil {
			t.Errorf("Tokenize(%q) should fail", in)
		}
	}
}

func TestTokenizeStrings(t *testing.T) {
	toks, err := Tokenize("'hello world'")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Type != TokString || toks[0].Text != "hello world" {
		t.Fatalf("token = %+v", toks[0])
	}

	toks, err = Tokenize("'it''s'")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Text != "it's" {
		t.Fatalf("escaped quote: %q", toks[0].Text)
	}

	if _, err := Tokenize("'unterminated"); err == nil {
		t.Fatal("unterminated string should fail")
	}
}

func TestTokenizeOperators(t *testing.T) {
	got := tokenTexts(t, "a <= b >= c != d <> e = f < g > h")
	want := []string{"a", "<=", "b", ">=", "c", "!=", "d", "!=", "e", "=", "f", "<", "g", ">", "h"}
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Fatalf("tokens = %v, want %v", got, want)
	}
}

func TestTokenizeComments(t *testing.T) {
	got := tokenTexts(t, "SELECT 1 -- a comment\n, 2")
	want := []string{"SELECT", "1", ",", "2"}
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Fatalf("tokens = %v, want %v", got, want)
	}
}

func TestTokenizeRejectsGarbage(t *testing.T) {
	if _, err := Tokenize("SELECT @foo"); err == nil {
		t.Fatal("expected error for '@'")
	}
}

func TestTokenizeEmptyInput(t *testing.T) {
	toks, err := Tokenize("   \n\t ")
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) != 1 || toks[0].Type != TokEOF {
		t.Fatalf("tokens = %v", toks)
	}
}
