package sqlparse

import (
	"fmt"
	"strconv"
	"strings"
)

// Parser is a recursive-descent parser over a token stream.
type Parser struct {
	toks []Token
	pos  int
}

// Parse parses a single SQL statement (an optional trailing semicolon is
// allowed).
func Parse(input string) (Statement, error) {
	stmts, err := ParseAll(input)
	if err != nil {
		return nil, err
	}
	if len(stmts) != 1 {
		return nil, fmt.Errorf("sqlparse: expected exactly one statement, got %d", len(stmts))
	}
	return stmts[0], nil
}

// ParseAll parses a semicolon-separated script.
func ParseAll(input string) ([]Statement, error) {
	toks, err := Tokenize(input)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks}
	var out []Statement
	for {
		for p.acceptSymbol(";") {
		}
		if p.peek().Type == TokEOF {
			break
		}
		s, err := p.parseStatement()
		if err != nil {
			return nil, err
		}
		out = append(out, s)
		if !p.acceptSymbol(";") && p.peek().Type != TokEOF {
			return nil, p.errorf("expected ';' or end of input, found %s", p.peek())
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("sqlparse: empty input")
	}
	return out, nil
}

func (p *Parser) peek() Token { return p.toks[p.pos] }

func (p *Parser) next() Token {
	t := p.toks[p.pos]
	if t.Type != TokEOF {
		p.pos++
	}
	return t
}

func (p *Parser) errorf(format string, args ...interface{}) error {
	return fmt.Errorf("sqlparse: %s (at offset %d)", fmt.Sprintf(format, args...), p.peek().Pos)
}

func (p *Parser) acceptKeyword(kw string) bool {
	if t := p.peek(); t.Type == TokKeyword && t.Text == kw {
		p.next()
		return true
	}
	return false
}

func (p *Parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return p.errorf("expected %s, found %s", kw, p.peek())
	}
	return nil
}

func (p *Parser) acceptSymbol(sym string) bool {
	if t := p.peek(); t.Type == TokSymbol && t.Text == sym {
		p.next()
		return true
	}
	return false
}

func (p *Parser) expectSymbol(sym string) error {
	if !p.acceptSymbol(sym) {
		return p.errorf("expected %q, found %s", sym, p.peek())
	}
	return nil
}

// parseIdent accepts an identifier, or a non-reserved-looking keyword used
// as a name (we are permissive: COUNT etc. may appear as column names).
func (p *Parser) parseIdent() (string, error) {
	t := p.peek()
	if t.Type == TokIdent {
		p.next()
		return t.Text, nil
	}
	return "", p.errorf("expected identifier, found %s", t)
}

func (p *Parser) parseStatement() (Statement, error) {
	t := p.peek()
	if t.Type != TokKeyword {
		return nil, p.errorf("expected statement keyword, found %s", t)
	}
	switch t.Text {
	case "SELECT":
		return p.parseSelect()
	case "CREATE":
		return p.parseCreate()
	case "INSERT":
		return p.parseInsert()
	case "UPDATE":
		return p.parseUpdate()
	case "DELETE":
		return p.parseDelete()
	case "DROP":
		return p.parseDrop()
	case "EXPAND":
		return p.parseExpand()
	case "EXPLAIN":
		p.next()
		// ANALYZE is contextual, not reserved: it only means "execute and
		// annotate" in this position, and stays usable as an identifier.
		analyze := false
		if pk := p.peek(); pk.Type == TokIdent && strings.ToUpper(pk.Text) == "ANALYZE" {
			p.next()
			analyze = true
		}
		if p.peek().Type == TokKeyword && p.peek().Text == "EXPLAIN" {
			return nil, p.errorf("EXPLAIN cannot be nested")
		}
		inner, err := p.parseStatement()
		if err != nil {
			return nil, err
		}
		return &ExplainStmt{Stmt: inner, Analyze: analyze}, nil
	default:
		return nil, p.errorf("unsupported statement %s", t)
	}
}

// ---------- SELECT ----------

func (p *Parser) parseSelect() (*SelectStmt, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	stmt := &SelectStmt{Limit: -1}
	if p.acceptKeyword("DISTINCT") {
		stmt.Distinct = true
	}

	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		stmt.Items = append(stmt.Items, item)
		if !p.acceptSymbol(",") {
			break
		}
	}

	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	tbl, err := p.parseIdent()
	if err != nil {
		return nil, err
	}
	stmt.Table = tbl
	stmt.TableAlias = p.parseOptionalAlias()

	for {
		if p.acceptKeyword("INNER") {
			if err := p.expectKeyword("JOIN"); err != nil {
				return nil, err
			}
		} else if !p.acceptKeyword("JOIN") {
			break
		}
		join := JoinClause{}
		if join.Table, err = p.parseIdent(); err != nil {
			return nil, err
		}
		join.Alias = p.parseOptionalAlias()
		if err := p.expectKeyword("ON"); err != nil {
			return nil, err
		}
		if join.On, err = p.parseExpr(); err != nil {
			return nil, err
		}
		stmt.Joins = append(stmt.Joins, join)
	}

	if p.acceptKeyword("WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Where = w
	}
	if p.acceptKeyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			stmt.GroupBy = append(stmt.GroupBy, e)
			if !p.acceptSymbol(",") {
				break
			}
		}
	}
	if p.acceptKeyword("HAVING") {
		h, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Having = h
	}
	if p.acceptKeyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			key := OrderKey{Expr: e}
			if p.acceptKeyword("DESC") {
				key.Desc = true
			} else {
				p.acceptKeyword("ASC")
			}
			stmt.OrderBy = append(stmt.OrderBy, key)
			if !p.acceptSymbol(",") {
				break
			}
		}
	}
	if p.acceptKeyword("LIMIT") {
		t := p.peek()
		if t.Type != TokNumber {
			return nil, p.errorf("expected LIMIT count, found %s", t)
		}
		n, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil || n < 0 {
			return nil, p.errorf("invalid LIMIT %q", t.Text)
		}
		p.next()
		stmt.Limit = n
	}
	return stmt, nil
}

var aggKeywords = map[string]AggFunc{
	"COUNT": AggCount, "SUM": AggSum, "AVG": AggAvg, "MIN": AggMin, "MAX": AggMax,
}

func (p *Parser) parseSelectItem() (SelectItem, error) {
	if p.acceptSymbol("*") {
		return SelectItem{Star: true}, nil
	}
	if t := p.peek(); t.Type == TokKeyword {
		if agg, ok := aggKeywords[t.Text]; ok {
			p.next()
			if err := p.expectSymbol("("); err != nil {
				return SelectItem{}, err
			}
			item := SelectItem{Agg: agg}
			if p.acceptSymbol("*") {
				if agg != AggCount {
					return SelectItem{}, p.errorf("%s(*) is not valid; only COUNT(*)", agg)
				}
			} else {
				arg, err := p.parseExpr()
				if err != nil {
					return SelectItem{}, err
				}
				item.Expr = arg
			}
			if err := p.expectSymbol(")"); err != nil {
				return SelectItem{}, err
			}
			item.Alias = p.parseOptionalAlias()
			return item, nil
		}
	}
	e, err := p.parseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	return SelectItem{Expr: e, Alias: p.parseOptionalAlias()}, nil
}

func (p *Parser) parseOptionalAlias() string {
	// We support the bare-identifier alias form: SELECT expr name.
	// (AS is not a keyword in this dialect to keep the grammar small.)
	if t := p.peek(); t.Type == TokIdent {
		p.next()
		return t.Text
	}
	return ""
}

// ---------- expressions (precedence climbing) ----------

// precedence: OR < AND < NOT < comparison < additive < multiplicative < unary
func (p *Parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *Parser) parseOr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("OR") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: "OR", Left: left, Right: right}
	}
	return left, nil
}

func (p *Parser) parseAnd() (Expr, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("AND") {
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: "AND", Left: left, Right: right}
	}
	return left, nil
}

func (p *Parser) parseNot() (Expr, error) {
	if p.acceptKeyword("NOT") {
		e, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "NOT", Expr: e}, nil
	}
	return p.parseComparison()
}

func (p *Parser) parseComparison() (Expr, error) {
	left, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	// IS [NOT] NULL
	if p.acceptKeyword("IS") {
		neg := p.acceptKeyword("NOT")
		if err := p.expectKeyword("NULL"); err != nil {
			return nil, err
		}
		return &IsNullExpr{Expr: left, Negate: neg}, nil
	}
	for _, op := range []string{"<=", ">=", "!=", "=", "<", ">"} {
		if p.acceptSymbol(op) {
			right, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			return &BinaryExpr{Op: op, Left: left, Right: right}, nil
		}
	}
	return left, nil
}

func (p *Parser) parseAdditive() (Expr, error) {
	left, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch {
		case p.acceptSymbol("+"):
			op = "+"
		case p.acceptSymbol("-"):
			op = "-"
		default:
			return left, nil
		}
		right, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: op, Left: left, Right: right}
	}
}

func (p *Parser) parseMultiplicative() (Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch {
		case p.acceptSymbol("*"):
			op = "*"
		case p.acceptSymbol("/"):
			op = "/"
		default:
			return left, nil
		}
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: op, Left: left, Right: right}
	}
}

func (p *Parser) parseUnary() (Expr, error) {
	if p.acceptSymbol("-") {
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		// Constant-fold negative literals so -3 is a literal, which the
		// INSERT path requires.
		if lit, ok := e.(*Literal); ok {
			switch lit.Kind {
			case LitInt:
				return &Literal{Kind: LitInt, Int: -lit.Int}, nil
			case LitFloat:
				return &Literal{Kind: LitFloat, Float: -lit.Float}, nil
			}
		}
		return &UnaryExpr{Op: "-", Expr: e}, nil
	}
	return p.parsePrimary()
}

func (p *Parser) parsePrimary() (Expr, error) {
	t := p.peek()
	switch t.Type {
	case TokNumber:
		p.next()
		if strings.ContainsAny(t.Text, ".eE") {
			f, err := strconv.ParseFloat(t.Text, 64)
			if err != nil {
				return nil, p.errorf("invalid number %q", t.Text)
			}
			return &Literal{Kind: LitFloat, Float: f}, nil
		}
		i, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			// Integer overflow: fall back to float like most engines.
			f, ferr := strconv.ParseFloat(t.Text, 64)
			if ferr != nil {
				return nil, p.errorf("invalid number %q", t.Text)
			}
			return &Literal{Kind: LitFloat, Float: f}, nil
		}
		return &Literal{Kind: LitInt, Int: i}, nil
	case TokString:
		p.next()
		return &Literal{Kind: LitString, Str: t.Text}, nil
	case TokIdent:
		p.next()
		// Qualified reference: table.column.
		if p.acceptSymbol(".") {
			col, err := p.parseIdent()
			if err != nil {
				return nil, err
			}
			return &ColumnRef{Table: t.Text, Name: col}, nil
		}
		return &ColumnRef{Name: t.Text}, nil
	case TokKeyword:
		switch t.Text {
		case "TRUE":
			p.next()
			return &Literal{Kind: LitBool, Bool: true}, nil
		case "FALSE":
			p.next()
			return &Literal{Kind: LitBool, Bool: false}, nil
		case "NULL":
			p.next()
			return &Literal{Kind: LitNull}, nil
		}
		// Aggregate calls inside expressions (ORDER BY COUNT(*), HAVING
		// AVG(x) > 1) parse into a ColumnRef naming the grouped output
		// column, which is how the engine resolves them.
		if agg, ok := aggKeywords[t.Text]; ok {
			p.next()
			if err := p.expectSymbol("("); err != nil {
				return nil, err
			}
			argText := "*"
			if !p.acceptSymbol("*") {
				arg, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				argText = arg.String()
			} else if agg != AggCount {
				return nil, p.errorf("%s(*) is not valid; only COUNT(*)", agg)
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			return &ColumnRef{Name: strings.ToLower(string(agg)) + "(" + argText + ")"}, nil
		}
		return nil, p.errorf("unexpected keyword %s in expression", t)
	case TokSymbol:
		if t.Text == "(" {
			p.next()
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	}
	return nil, p.errorf("unexpected token %s in expression", t)
}

// ---------- CREATE TABLE ----------

var typeNames = map[string]string{
	"INTEGER": "INTEGER", "INT": "INTEGER",
	"FLOAT": "FLOAT", "REAL": "FLOAT",
	"TEXT": "TEXT", "VARCHAR": "TEXT",
	"BOOLEAN": "BOOLEAN", "BOOL": "BOOLEAN",
}

func (p *Parser) parseColumnType() (string, error) {
	t := p.peek()
	if t.Type == TokKeyword {
		if norm, ok := typeNames[t.Text]; ok {
			p.next()
			// Accept and ignore VARCHAR(n) length suffixes.
			if p.acceptSymbol("(") {
				if n := p.peek(); n.Type == TokNumber {
					p.next()
				}
				if err := p.expectSymbol(")"); err != nil {
					return "", err
				}
			}
			return norm, nil
		}
	}
	return "", p.errorf("expected column type, found %s", t)
}

// parseCreate dispatches CREATE TABLE vs CREATE INDEX.
func (p *Parser) parseCreate() (Statement, error) {
	if err := p.expectKeyword("CREATE"); err != nil {
		return nil, err
	}
	if p.acceptKeyword("INDEX") {
		return p.parseCreateIndex()
	}
	return p.parseCreateTable()
}

// parseCreateIndex parses the tail of
//
//	CREATE INDEX name ON table (column [ASC|DESC], ...) [USING HASH|ORDERED]
//
// with CREATE INDEX already consumed.
func (p *Parser) parseCreateIndex() (*CreateIndexStmt, error) {
	name, err := p.parseIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("ON"); err != nil {
		return nil, err
	}
	table, err := p.parseIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	var cols []IndexCol
	for {
		column, err := p.parseIdent()
		if err != nil {
			return nil, err
		}
		col := IndexCol{Name: column}
		if p.acceptKeyword("DESC") {
			col.Desc = true
		} else {
			p.acceptKeyword("ASC")
		}
		cols = append(cols, col)
		if !p.acceptSymbol(",") {
			break
		}
	}
	if err := p.expectSymbol(")"); err != nil {
		return nil, err
	}
	stmt := &CreateIndexStmt{Name: name, Table: table, Columns: cols, Column: cols[0].Name, Kind: "ordered"}
	if p.acceptKeyword("USING") {
		// HASH and ORDERED are not reserved words; they arrive as plain
		// identifiers here.
		kind, err := p.parseIdent()
		if err != nil {
			return nil, err
		}
		switch strings.ToLower(kind) {
		case "hash", "ordered":
			stmt.Kind = strings.ToLower(kind)
		default:
			return nil, p.errorf("expected HASH or ORDERED after USING, found %q", kind)
		}
	}
	return stmt, nil
}

func (p *Parser) parseCreateTable() (*CreateTableStmt, error) {
	if err := p.expectKeyword("TABLE"); err != nil {
		return nil, err
	}
	name, err := p.parseIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	stmt := &CreateTableStmt{Table: name}
	for {
		colName, err := p.parseIdent()
		if err != nil {
			return nil, err
		}
		typ, err := p.parseColumnType()
		if err != nil {
			return nil, err
		}
		col := ColumnDef{Name: colName, Type: typ}
		if p.acceptKeyword("PERCEPTUAL") {
			col.Perceptual = true
		}
		stmt.Columns = append(stmt.Columns, col)
		if p.acceptSymbol(",") {
			continue
		}
		break
	}
	if err := p.expectSymbol(")"); err != nil {
		return nil, err
	}
	return stmt, nil
}

// ---------- INSERT ----------

func (p *Parser) parseInsert() (*InsertStmt, error) {
	if err := p.expectKeyword("INSERT"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("INTO"); err != nil {
		return nil, err
	}
	name, err := p.parseIdent()
	if err != nil {
		return nil, err
	}
	stmt := &InsertStmt{Table: name}
	if p.acceptSymbol("(") {
		for {
			col, err := p.parseIdent()
			if err != nil {
				return nil, err
			}
			stmt.Columns = append(stmt.Columns, col)
			if !p.acceptSymbol(",") {
				break
			}
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
	}
	if err := p.expectKeyword("VALUES"); err != nil {
		return nil, err
	}
	for {
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		var row []Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if !p.acceptSymbol(",") {
				break
			}
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		stmt.Rows = append(stmt.Rows, row)
		if !p.acceptSymbol(",") {
			break
		}
	}
	return stmt, nil
}

// ---------- UPDATE / DELETE / DROP ----------

func (p *Parser) parseUpdate() (*UpdateStmt, error) {
	if err := p.expectKeyword("UPDATE"); err != nil {
		return nil, err
	}
	name, err := p.parseIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("SET"); err != nil {
		return nil, err
	}
	stmt := &UpdateStmt{Table: name}
	for {
		col, err := p.parseIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol("="); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Set = append(stmt.Set, Assignment{Column: col, Expr: e})
		if !p.acceptSymbol(",") {
			break
		}
	}
	if p.acceptKeyword("WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Where = w
	}
	return stmt, nil
}

func (p *Parser) parseDelete() (*DeleteStmt, error) {
	if err := p.expectKeyword("DELETE"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	name, err := p.parseIdent()
	if err != nil {
		return nil, err
	}
	stmt := &DeleteStmt{Table: name}
	if p.acceptKeyword("WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Where = w
	}
	return stmt, nil
}

// parseDrop dispatches DROP TABLE vs DROP INDEX.
func (p *Parser) parseDrop() (Statement, error) {
	if err := p.expectKeyword("DROP"); err != nil {
		return nil, err
	}
	if p.acceptKeyword("INDEX") {
		return p.parseDropIndex()
	}
	if err := p.expectKeyword("TABLE"); err != nil {
		return nil, err
	}
	name, err := p.parseIdent()
	if err != nil {
		return nil, err
	}
	return &DropTableStmt{Table: name}, nil
}

// parseDropIndex parses the tail of
//
//	DROP INDEX name ON table
//
// with DROP INDEX already consumed.
func (p *Parser) parseDropIndex() (*DropIndexStmt, error) {
	name, err := p.parseIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("ON"); err != nil {
		return nil, err
	}
	table, err := p.parseIdent()
	if err != nil {
		return nil, err
	}
	return &DropIndexStmt{Name: name, Table: table}, nil
}

// ---------- EXPAND ----------

func (p *Parser) parseExpand() (*ExpandStmt, error) {
	if err := p.expectKeyword("EXPAND"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("TABLE"); err != nil {
		return nil, err
	}
	name, err := p.parseIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("ADD"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("COLUMN"); err != nil {
		return nil, err
	}
	colName, err := p.parseIdent()
	if err != nil {
		return nil, err
	}
	typ, err := p.parseColumnType()
	if err != nil {
		return nil, err
	}
	col := ColumnDef{Name: colName, Type: typ, Perceptual: true}
	if p.acceptKeyword("PERCEPTUAL") {
		col.Perceptual = true
	}
	stmt := &ExpandStmt{Table: name, Column: col, Method: ExpandSpace}
	if p.acceptKeyword("USING") {
		t := p.peek()
		switch {
		case p.acceptKeyword("CROWD"):
			stmt.Method = ExpandCrowd
		case p.acceptKeyword("SPACE"):
			stmt.Method = ExpandSpace
		case p.acceptKeyword("HYBRID"):
			stmt.Method = ExpandHybrid
		default:
			return nil, p.errorf("expected CROWD, SPACE or HYBRID, found %s", t)
		}
	}
	for p.acceptKeyword("WITH") {
		switch {
		case p.acceptKeyword("SAMPLES"):
			t := p.peek()
			if t.Type != TokNumber {
				return nil, p.errorf("expected sample count, found %s", t)
			}
			n, err := strconv.ParseInt(t.Text, 10, 64)
			if err != nil || n <= 0 {
				return nil, p.errorf("invalid sample count %q", t.Text)
			}
			p.next()
			stmt.Samples = n
		case p.acceptKeyword("BUDGET"):
			t := p.peek()
			if t.Type != TokNumber {
				return nil, p.errorf("expected budget, found %s", t)
			}
			f, err := strconv.ParseFloat(t.Text, 64)
			if err != nil || f < 0 {
				return nil, p.errorf("invalid budget %q", t.Text)
			}
			p.next()
			stmt.Budget = f
		default:
			return nil, p.errorf("expected SAMPLES or BUDGET after WITH, found %s", p.peek())
		}
	}
	return stmt, nil
}
