package sqlparse

import (
	"testing"
)

func mustParse(t *testing.T, sql string) Statement {
	t.Helper()
	s, err := Parse(sql)
	if err != nil {
		t.Fatalf("Parse(%q): %v", sql, err)
	}
	return s
}

func TestParsePaperQuery(t *testing.T) {
	// The running example of the paper.
	s := mustParse(t, "SELECT * FROM movies WHERE is_comedy = true")
	sel, ok := s.(*SelectStmt)
	if !ok {
		t.Fatalf("not a SelectStmt: %T", s)
	}
	if sel.Table != "movies" || !sel.Items[0].Star {
		t.Fatalf("stmt = %+v", sel)
	}
	cmp, ok := sel.Where.(*BinaryExpr)
	if !ok || cmp.Op != "=" {
		t.Fatalf("where = %v", sel.Where)
	}
	col, ok := cmp.Left.(*ColumnRef)
	if !ok || col.Name != "is_comedy" {
		t.Fatalf("lhs = %v", cmp.Left)
	}
	lit, ok := cmp.Right.(*Literal)
	if !ok || lit.Kind != LitBool || !lit.Bool {
		t.Fatalf("rhs = %v", cmp.Right)
	}
}

func TestParseHumorQuery(t *testing.T) {
	// "SELECT name FROM movies WHERE humor >= 8"
	s := mustParse(t, "SELECT name FROM movies WHERE humor >= 8")
	sel := s.(*SelectStmt)
	if len(sel.Items) != 1 || sel.Items[0].Star {
		t.Fatalf("items = %+v", sel.Items)
	}
	if e, ok := sel.Items[0].Expr.(*ColumnRef); !ok || e.Name != "name" {
		t.Fatalf("item = %+v", sel.Items[0])
	}
}

func TestParsePrecedence(t *testing.T) {
	s := mustParse(t, "SELECT * FROM t WHERE a = 1 OR b = 2 AND NOT c = 3")
	sel := s.(*SelectStmt)
	// Expect OR(a=1, AND(b=2, NOT(c=3)))
	or, ok := sel.Where.(*BinaryExpr)
	if !ok || or.Op != "OR" {
		t.Fatalf("top = %v", sel.Where.String())
	}
	and, ok := or.Right.(*BinaryExpr)
	if !ok || and.Op != "AND" {
		t.Fatalf("right = %v", or.Right.String())
	}
	if _, ok := and.Right.(*UnaryExpr); !ok {
		t.Fatalf("expected NOT on the right of AND, got %v", and.Right.String())
	}
}

func TestParseArithmeticPrecedence(t *testing.T) {
	s := mustParse(t, "SELECT * FROM t WHERE a + b * 2 >= c - 1")
	sel := s.(*SelectStmt)
	want := "((a + (b * 2)) >= (c - 1))"
	if got := sel.Where.String(); got != want {
		t.Fatalf("where = %s, want %s", got, want)
	}
}

func TestParseParentheses(t *testing.T) {
	s := mustParse(t, "SELECT * FROM t WHERE (a OR b) AND c")
	sel := s.(*SelectStmt)
	want := "((a OR b) AND c)"
	if got := sel.Where.String(); got != want {
		t.Fatalf("where = %s, want %s", got, want)
	}
}

func TestParseIsNull(t *testing.T) {
	s := mustParse(t, "SELECT * FROM t WHERE x IS NULL AND y IS NOT NULL")
	sel := s.(*SelectStmt)
	want := "((x IS NULL) AND (y IS NOT NULL))"
	if got := sel.Where.String(); got != want {
		t.Fatalf("where = %s, want %s", got, want)
	}
}

func TestParseOrderByLimit(t *testing.T) {
	s := mustParse(t, "SELECT name FROM movies ORDER BY year DESC, name LIMIT 10")
	sel := s.(*SelectStmt)
	if len(sel.OrderBy) != 2 || !sel.OrderBy[0].Desc || sel.OrderBy[1].Desc {
		t.Fatalf("orderBy = %+v", sel.OrderBy)
	}
	if sel.Limit != 10 {
		t.Fatalf("limit = %d", sel.Limit)
	}
}

func TestParseAggregates(t *testing.T) {
	s := mustParse(t, "SELECT COUNT(*), AVG(humor) mean_humor FROM movies WHERE is_comedy = true")
	sel := s.(*SelectStmt)
	if sel.Items[0].Agg != AggCount || sel.Items[0].Expr != nil {
		t.Fatalf("item0 = %+v", sel.Items[0])
	}
	if sel.Items[1].Agg != AggAvg || sel.Items[1].Alias != "mean_humor" {
		t.Fatalf("item1 = %+v", sel.Items[1])
	}
	if _, err := Parse("SELECT SUM(*) FROM t"); err == nil {
		t.Fatal("SUM(*) must be rejected")
	}
}

func TestParseCreateTable(t *testing.T) {
	s := mustParse(t, `CREATE TABLE movies (
		movie_id INTEGER,
		name VARCHAR(200),
		year INT,
		rating FLOAT,
		humor FLOAT PERCEPTUAL,
		is_comedy BOOLEAN PERCEPTUAL
	)`)
	ct := s.(*CreateTableStmt)
	if ct.Table != "movies" || len(ct.Columns) != 6 {
		t.Fatalf("stmt = %+v", ct)
	}
	if ct.Columns[1].Type != "TEXT" {
		t.Fatalf("VARCHAR should normalize to TEXT, got %s", ct.Columns[1].Type)
	}
	if ct.Columns[2].Type != "INTEGER" || ct.Columns[3].Type != "FLOAT" {
		t.Fatalf("types = %+v", ct.Columns)
	}
	if !ct.Columns[4].Perceptual || !ct.Columns[5].Perceptual || ct.Columns[0].Perceptual {
		t.Fatalf("perceptual flags wrong: %+v", ct.Columns)
	}
}

func TestParseInsert(t *testing.T) {
	s := mustParse(t, "INSERT INTO movies (movie_id, name) VALUES (1, 'Rocky'), (2, 'Psycho')")
	ins := s.(*InsertStmt)
	if ins.Table != "movies" || len(ins.Columns) != 2 || len(ins.Rows) != 2 {
		t.Fatalf("stmt = %+v", ins)
	}
	lit := ins.Rows[1][1].(*Literal)
	if lit.Kind != LitString || lit.Str != "Psycho" {
		t.Fatalf("value = %+v", lit)
	}
}

func TestParseInsertNegativeNumber(t *testing.T) {
	s := mustParse(t, "INSERT INTO t VALUES (-3, -2.5)")
	ins := s.(*InsertStmt)
	if lit := ins.Rows[0][0].(*Literal); lit.Kind != LitInt || lit.Int != -3 {
		t.Fatalf("folded literal = %+v", lit)
	}
	if lit := ins.Rows[0][1].(*Literal); lit.Kind != LitFloat || lit.Float != -2.5 {
		t.Fatalf("folded literal = %+v", lit)
	}
}

func TestParseUpdateDelete(t *testing.T) {
	s := mustParse(t, "UPDATE movies SET year = 1977, name = 'X' WHERE movie_id = 1")
	up := s.(*UpdateStmt)
	if len(up.Set) != 2 || up.Set[0].Column != "year" || up.Where == nil {
		t.Fatalf("stmt = %+v", up)
	}
	s = mustParse(t, "DELETE FROM movies WHERE year < 1950")
	del := s.(*DeleteStmt)
	if del.Table != "movies" || del.Where == nil {
		t.Fatalf("stmt = %+v", del)
	}
	s = mustParse(t, "DROP TABLE movies")
	if s.(*DropTableStmt).Table != "movies" {
		t.Fatalf("stmt = %+v", s)
	}
}

func TestParseExpand(t *testing.T) {
	s := mustParse(t, "EXPAND TABLE movies ADD COLUMN is_comedy BOOLEAN USING SPACE WITH SAMPLES 40 WITH BUDGET 2.50")
	ex := s.(*ExpandStmt)
	if ex.Table != "movies" || ex.Column.Name != "is_comedy" || ex.Column.Type != "BOOLEAN" {
		t.Fatalf("stmt = %+v", ex)
	}
	if ex.Method != ExpandSpace || ex.Samples != 40 || ex.Budget != 2.50 {
		t.Fatalf("stmt = %+v", ex)
	}
	if !ex.Column.Perceptual {
		t.Fatal("EXPAND columns default to perceptual")
	}

	s = mustParse(t, "EXPAND TABLE movies ADD COLUMN humor FLOAT USING CROWD")
	if s.(*ExpandStmt).Method != ExpandCrowd {
		t.Fatal("USING CROWD not parsed")
	}

	s = mustParse(t, "EXPAND TABLE movies ADD COLUMN humor FLOAT")
	if s.(*ExpandStmt).Method != ExpandSpace {
		t.Fatal("default method should be SPACE")
	}

	if _, err := Parse("EXPAND TABLE m ADD COLUMN c BOOLEAN USING MAGIC"); err == nil {
		t.Fatal("bad method must fail")
	}
}

func TestParseAllScript(t *testing.T) {
	stmts, err := ParseAll(`
		CREATE TABLE t (a INTEGER);
		INSERT INTO t VALUES (1);
		SELECT * FROM t;
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 3 {
		t.Fatalf("got %d statements", len(stmts))
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT",
		"SELECT FROM t",
		"SELECT * FROM",
		"SELECT * FROM t WHERE",
		"SELECT * WHERE a = 1",
		"SELECT * FROM t LIMIT -1",
		"SELECT * FROM t LIMIT x",
		"CREATE TABLE t",
		"CREATE TABLE t ()",
		"CREATE TABLE t (a)",
		"CREATE TABLE t (a WIBBLE)",
		"INSERT INTO t",
		"INSERT t VALUES (1)",
		"UPDATE t SET",
		"DELETE t",
		"DROP t",
		"SELECT * FROM t; garbage",
		"SELECT * FROM t WHERE a = ",
		"SELECT * FROM t WHERE (a = 1",
		"EXPAND movies ADD COLUMN x BOOLEAN",
		"EXPAND TABLE movies ADD x BOOLEAN",
		"EXPAND TABLE m ADD COLUMN c BOOLEAN WITH SAMPLES 0",
	}
	for _, sql := range bad {
		if _, err := Parse(sql); err == nil {
			t.Errorf("Parse(%q) should fail", sql)
		}
	}
}

func TestParseMultipleStatementsRejectedBySingleParse(t *testing.T) {
	if _, err := Parse("SELECT * FROM a; SELECT * FROM b"); err == nil {
		t.Fatal("Parse must reject multiple statements")
	}
}

func TestWalkColumns(t *testing.T) {
	s := mustParse(t, "SELECT * FROM t WHERE a = 1 AND (b OR NOT c > 2) AND d IS NULL")
	sel := s.(*SelectStmt)
	var names []string
	WalkColumns(sel.Where, func(c *ColumnRef) { names = append(names, c.Name) })
	want := []string{"a", "b", "c", "d"}
	if len(names) != len(want) {
		t.Fatalf("columns = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("columns = %v, want %v", names, want)
		}
	}
	WalkColumns(nil, func(c *ColumnRef) { t.Fatal("nil expression must visit nothing") })
}

func TestLiteralString(t *testing.T) {
	cases := map[string]*Literal{
		"NULL":   {Kind: LitNull},
		"true":   {Kind: LitBool, Bool: true},
		"42":     {Kind: LitInt, Int: 42},
		"2.5":    {Kind: LitFloat, Float: 2.5},
		"'a''b'": {Kind: LitString, Str: "a'b"},
	}
	for want, lit := range cases {
		if got := lit.String(); got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
}
