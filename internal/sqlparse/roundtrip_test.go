package sqlparse

import (
	"fmt"
	"math/rand"
	"testing"
)

// genExpr builds a random expression tree of bounded depth whose String()
// form is re-parseable.
func genExpr(rng *rand.Rand, depth int) Expr {
	if depth <= 0 {
		switch rng.Intn(5) {
		case 0:
			return &Literal{Kind: LitInt, Int: int64(rng.Intn(200) - 100)}
		case 1:
			return &Literal{Kind: LitFloat, Float: float64(rng.Intn(1000))/8 + 0.5}
		case 2:
			return &Literal{Kind: LitBool, Bool: rng.Intn(2) == 0}
		case 3:
			return &Literal{Kind: LitString, Str: fmt.Sprintf("s%d'q", rng.Intn(10))}
		default:
			return &ColumnRef{Name: fmt.Sprintf("col%d", rng.Intn(8))}
		}
	}
	switch rng.Intn(8) {
	case 0:
		return &BinaryExpr{Op: "AND", Left: genExpr(rng, depth-1), Right: genExpr(rng, depth-1)}
	case 1:
		return &BinaryExpr{Op: "OR", Left: genExpr(rng, depth-1), Right: genExpr(rng, depth-1)}
	case 2:
		ops := []string{"=", "!=", "<", "<=", ">", ">="}
		return &BinaryExpr{Op: ops[rng.Intn(len(ops))], Left: genExpr(rng, depth-1), Right: genExpr(rng, depth-1)}
	case 3:
		ops := []string{"+", "-", "*", "/"}
		return &BinaryExpr{Op: ops[rng.Intn(len(ops))], Left: genExpr(rng, depth-1), Right: genExpr(rng, depth-1)}
	case 4:
		return &UnaryExpr{Op: "NOT", Expr: genExpr(rng, depth-1)}
	case 5:
		return &IsNullExpr{Expr: genExpr(rng, depth-1), Negate: rng.Intn(2) == 0}
	default:
		return genExpr(rng, 0)
	}
}

// Property: String() output re-parses to an expression with the same
// String() output (a fixed point after one round).
func TestExpressionStringRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 500; i++ {
		e := genExpr(rng, 1+rng.Intn(4))
		text := e.String()
		sql := "SELECT * FROM t WHERE " + text
		stmt, err := Parse(sql)
		if err != nil {
			t.Fatalf("re-parse of %q failed: %v", text, err)
		}
		again := stmt.(*SelectStmt).Where.String()
		if again != text {
			t.Fatalf("round-trip mismatch:\n  first:  %s\n  second: %s", text, again)
		}
	}
}

// Property: every statement the parser accepts has stable structure under
// WalkColumns (no panics, bounded column count).
func TestWalkColumnsOnRandomExpressions(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 300; i++ {
		e := genExpr(rng, 3)
		count := 0
		WalkColumns(e, func(*ColumnRef) { count++ })
		if count < 0 || count > 1<<12 {
			t.Fatalf("column count %d out of bounds", count)
		}
	}
}
