// Package sqlparse implements the SQL dialect of the crowd-enabled
// database: a lexer, an AST, and a recursive-descent parser.
//
// The dialect covers the statements the paper's scenarios need —
// CREATE TABLE (with a PERCEPTUAL column modifier), INSERT, SELECT with
// WHERE/ORDER BY/LIMIT, inner `JOIN … ON` (with table aliases and
// qualified `table.column` references), simple aggregates, EXPLAIN,
// UPDATE, and DELETE. The
// distinguishing feature is not syntax but semantics: a SELECT may
// reference columns that do not exist yet, and the engine layer decides
// whether that is an error or a schema-expansion trigger.
package sqlparse

import "fmt"

// TokenType identifies the lexical class of a token.
type TokenType uint8

const (
	TokEOF TokenType = iota
	TokIdent
	TokNumber
	TokString
	TokKeyword
	TokSymbol
)

func (t TokenType) String() string {
	switch t {
	case TokEOF:
		return "EOF"
	case TokIdent:
		return "identifier"
	case TokNumber:
		return "number"
	case TokString:
		return "string"
	case TokKeyword:
		return "keyword"
	case TokSymbol:
		return "symbol"
	default:
		return fmt.Sprintf("TokenType(%d)", uint8(t))
	}
}

// Token is one lexical unit. Keywords carry their upper-cased text;
// identifiers keep original casing (resolution is case-insensitive later).
type Token struct {
	Type TokenType
	Text string
	Pos  int // byte offset in the input, for error messages
}

func (t Token) String() string {
	if t.Type == TokEOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.Text)
}

// keywords is the reserved-word set of the dialect.
var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "AND": true, "OR": true,
	"NOT": true, "INSERT": true, "INTO": true, "VALUES": true,
	"CREATE": true, "TABLE": true, "ORDER": true, "BY": true, "ASC": true,
	"DESC": true, "LIMIT": true, "TRUE": true, "FALSE": true, "NULL": true,
	"IS": true, "UPDATE": true, "SET": true, "DELETE": true,
	"INTEGER": true, "INT": true, "FLOAT": true, "REAL": true,
	"TEXT": true, "VARCHAR": true, "BOOLEAN": true, "BOOL": true,
	"PERCEPTUAL": true, "COUNT": true, "SUM": true, "AVG": true,
	"MIN": true, "MAX": true, "DROP": true, "EXPAND": true, "USING": true,
	"CROWD": true, "SPACE": true, "HYBRID": true, "WITH": true,
	"BUDGET": true, "SAMPLES": true, "ADD": true, "COLUMN": true,
	"GROUP": true, "HAVING": true, "DISTINCT": true,
	"JOIN": true, "INNER": true, "ON": true, "EXPLAIN": true,
	"INDEX": true,
}

// IsKeyword reports whether upper-cased s is reserved.
func IsKeyword(s string) bool { return keywords[s] }
