package storage

import (
	"fmt"
	"sort"
	"sync"
)

// Backend is the storage-engine contract under the journal: everything
// internal/core needs from an engine, and nothing more. The durability
// layer logs typed Ops above this seam and replays them through
// ApplyOp; snapshots flow through Capture/Restore; the compactor and
// index machinery are reached through per-table hooks. Swapping the
// in-memory chunk store for an LSM/KV engine means implementing this
// interface — core, the SQL engine, and the HTTP surface don't change.
//
// The serving representation is always a *Catalog of MVCC tables (the
// SQL engine executes against it directly); a Backend owns how that
// state is (re)built, persisted out-of-line, and compacted.
type Backend interface {
	// Name is the backend's registry key ("mem", "file", ...).
	Name() string
	// Open prepares the backend. dir is the database's data directory
	// (empty for a purely in-memory database); backends with out-of-line
	// state root it here.
	Open(dir string) error
	// Catalog exposes the serving tables. The engine binds to it once at
	// database open.
	Catalog() *Catalog
	// ApplyOp applies one typed mutation — the WAL replay entry point.
	// The catalog has no journal attached during replay, so nothing is
	// re-logged.
	ApplyOp(op Op) error
	// Capture serializes every table's durable state for a snapshot.
	// Backends may externalize row payloads (TableState.External) and
	// return only a reference.
	Capture() ([]TableState, error)
	// Restore rebuilds tables from captured state (inline rows or
	// external references). Called once, before replay, on an empty
	// catalog.
	Restore(states []TableState) error
	// Compact reclaims tombstoned rows of the named table under the
	// given policy (see Table.Compact for the admission gates).
	Compact(table string, policy CompactionPolicy) (CompactionResult, error)
	// RebuildIndexes bulk-rebuilds the named table's secondary indexes
	// from its current snapshot.
	RebuildIndexes(table string) error
	// Close releases backend resources. The WAL is owned above the seam
	// and closed separately.
	Close() error
}

// TableState is one table's full contents inside a snapshot. Columns
// keep their Origin, so expanded columns recover as expanded. Rows
// carries every PHYSICAL row — tombstoned ones included — and Deleted
// lists the tombstoned IDs: restore re-inserts everything then
// re-deletes, so physical row IDs (which WAL records replayed on top
// reference) survive the round trip. Legacy snapshots have no Deleted
// field and decode as all-live.
//
// A backend that stores row payloads out-of-line sets External and
// File; Rows is then empty and Restore resolves the reference.
type TableState struct {
	Name     string   `json:"name"`
	Columns  []Column `json:"columns"`
	Rows     []Row    `json:"rows,omitempty"`
	Deleted  []int    `json:"deleted,omitempty"`
	External bool     `json:"external,omitempty"`
	File     string   `json:"file,omitempty"`
}

// --- registry ---

var (
	backendsMu sync.RWMutex
	backends   = map[string]func() Backend{}
)

// RegisterBackend installs a backend factory under name. Typically
// called from an implementation package's init; re-registering a name
// panics (it is a wiring bug, not a runtime condition).
func RegisterBackend(name string, factory func() Backend) {
	backendsMu.Lock()
	defer backendsMu.Unlock()
	if _, dup := backends[name]; dup {
		panic(fmt.Sprintf("storage: backend %q registered twice", name))
	}
	backends[name] = factory
}

// NewBackend instantiates the named backend. The caller still Opens it.
func NewBackend(name string) (Backend, error) {
	backendsMu.RLock()
	factory, ok := backends[name]
	backendsMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("storage: unknown backend %q (registered: %v)", name, BackendNames())
	}
	return factory(), nil
}

// BackendNames returns the sorted list of registered backend names.
func BackendNames() []string {
	backendsMu.RLock()
	defer backendsMu.RUnlock()
	out := make([]string, 0, len(backends))
	for name := range backends {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// --- shared op application ---

// ApplyCatalogOp applies one typed mutation to a catalog — the replay
// switch every catalog-backed Backend shares. The catalog must have no
// journal attached (replay must not re-log).
func ApplyCatalogOp(c *Catalog, op Op) error {
	switch op.Kind {
	case OpCreateTable:
		schema, err := NewSchema(op.Columns...)
		if err != nil {
			return err
		}
		_, err = c.Create(op.Table, schema)
		return err
	case OpDropTable:
		c.Drop(op.Table)
		return nil
	}
	tbl, ok := c.Get(op.Table)
	if !ok {
		return fmt.Errorf("storage: op %s targets unknown table %q", op.Kind, op.Table)
	}
	switch op.Kind {
	case OpInsert:
		return tbl.Insert(op.Values...)
	case OpSet:
		if len(op.Values) != 1 {
			return fmt.Errorf("storage: set op carries %d values", len(op.Values))
		}
		return tbl.Set(op.Row, op.Col, op.Values[0])
	case OpAddColumn:
		if op.Column == nil {
			return fmt.Errorf("storage: add_column op without column")
		}
		_, err := tbl.AddColumn(*op.Column)
		return err
	case OpFillColumn:
		return tbl.FillColumn(op.Name, op.Values)
	case OpDelete:
		// Pre-MVCC compacting delete: replayed with the old physical-shift
		// semantics so row indices in subsequent legacy records resolve.
		tbl.LegacyCompact(op.Rows)
		return nil
	case OpTombstone:
		tbl.Delete(op.Rows)
		return nil
	case OpCompact:
		tbl.ReplayCompact(op.Rows)
		return nil
	default:
		return fmt.Errorf("storage: unknown op kind %q", op.Kind)
	}
}

// CaptureCatalog serializes every table of c inline — the shared
// Capture path for catalog-backed backends without out-of-line storage.
func CaptureCatalog(c *Catalog) []TableState {
	var out []TableState
	for _, name := range c.Names() {
		tbl, ok := c.Get(name)
		if !ok {
			continue
		}
		ts := TableState{Name: tbl.Name(), Columns: tbl.Schema().Columns()}
		ts.Rows, ts.Deleted = tbl.CaptureState()
		out = append(out, ts)
	}
	return out
}

// RestoreCatalogTable rebuilds one inline table state into c.
func RestoreCatalogTable(c *Catalog, ts TableState) error {
	schema, err := NewSchema(ts.Columns...)
	if err != nil {
		return fmt.Errorf("storage: table %s: %w", ts.Name, err)
	}
	tbl, err := c.Create(ts.Name, schema)
	if err != nil {
		return err
	}
	for i, row := range ts.Rows {
		if err := tbl.Insert(row...); err != nil {
			return fmt.Errorf("storage: table %s row %d: %w", ts.Name, i, err)
		}
	}
	if len(ts.Deleted) > 0 {
		tbl.Delete(ts.Deleted)
	}
	return nil
}
