// Package backendtest is the conformance suite every storage.Backend
// implementation must pass. A backend package's tests call Run with a
// factory producing fresh, opened backends; the suite then exercises the
// full seam contract:
//
//   - mutate/scan/delete/fill across the sealed-chunk boundary
//   - crash replay: a journaled op stream applied through ApplyOp into a
//     fresh backend reproduces the original state bit-for-bit
//   - snapshot Capture/Restore round trip, tombstones and physical row
//     IDs included (WAL records replayed on top must keep resolving)
//   - tombstone compaction: full reclaim, index remap, replay determinism
//   - bulk index rebuild and chunk iteration
//
// The canonical runner (conformance_test.go in this directory) iterates
// storage.BackendNames(), so registering a new backend automatically
// enrolls it.
package backendtest

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"crowddb/internal/index"
	"crowddb/internal/storage"
)

// Factory returns a fresh backend, already Opened on dir, cleaned up via
// t.Cleanup. Each call must yield an independent instance; calling it
// twice with the same dir models a process restart over the same data
// directory (how Capture's external references are resolved by Restore).
type Factory func(t *testing.T, dir string) storage.Backend

// Run executes the conformance suite against backends from factory.
func Run(t *testing.T, factory Factory) {
	t.Run("MutateScanDeleteFill", func(t *testing.T) { testMutateScanDeleteFill(t, factory) })
	t.Run("CrashReplay", func(t *testing.T) { testCrashReplay(t, factory) })
	t.Run("SnapshotRoundTrip", func(t *testing.T) { testSnapshotRoundTrip(t, factory) })
	t.Run("Compaction", func(t *testing.T) { testCompaction(t, factory) })
	t.Run("IndexRebuild", func(t *testing.T) { testIndexRebuild(t, factory) })
	t.Run("ChunkIteration", func(t *testing.T) { testChunkIteration(t, factory) })
}

// opRecorder captures the journaled op stream — the suite's stand-in for
// a WAL.
type opRecorder struct {
	mu  sync.Mutex
	ops []storage.Op
}

func (r *opRecorder) LogOp(op storage.Op) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.ops = append(r.ops, op)
	return nil
}

func (r *opRecorder) snapshot() []storage.Op {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]storage.Op, len(r.ops))
	copy(out, r.ops)
	return out
}

// tableDump is one table's observable state: schema columns, live rows
// keyed by physical ID, and the tombstone count.
type tableDump struct {
	Columns    []storage.Column
	Live       map[int]string // physical row ID → rendered row
	Tombstones int
}

func dumpCatalog(t *testing.T, c *storage.Catalog) map[string]tableDump {
	t.Helper()
	out := map[string]tableDump{}
	for _, name := range c.Names() {
		tbl, ok := c.Get(name)
		if !ok {
			t.Fatalf("catalog names %q but Get fails", name)
		}
		d := tableDump{
			Columns:    tbl.Schema().Columns(),
			Live:       map[int]string{},
			Tombstones: tbl.Tombstones(),
		}
		tbl.Scan(func(i int, row storage.Row) bool {
			d.Live[i] = fmt.Sprintf("%v", row)
			return true
		})
		out[name] = d
	}
	return out
}

func mustCreate(t *testing.T, c *storage.Catalog, name string, cols ...storage.Column) *storage.Table {
	t.Helper()
	schema, err := storage.NewSchema(cols...)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := c.Create(name, schema)
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

// seedRows inserts n rows (id=i, name="row-%05d") into tbl.
func seedRows(t *testing.T, tbl *storage.Table, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if err := tbl.Insert(storage.Int(int64(i)), storage.Text(fmt.Sprintf("row-%05d", i))); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
}

func testMutateScanDeleteFill(t *testing.T, factory Factory) {
	be := factory(t, t.TempDir())
	c := be.Catalog()
	tbl := mustCreate(t, c, "items",
		storage.Column{Name: "id", Kind: storage.KindInt},
		storage.Column{Name: "name", Kind: storage.KindText})

	// Cross the sealed-chunk boundary: two full chunks plus a tail.
	n := 2*storage.ChunkRows + 100
	seedRows(t, tbl, n)
	if got := tbl.NumRows(); got != n {
		t.Fatalf("NumRows = %d, want %d", got, n)
	}

	// Mutate one sealed-chunk row and one tail row.
	if err := tbl.Set(17, 1, storage.Text("mutated-sealed")); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Set(n-3, 1, storage.Text("mutated-tail")); err != nil {
		t.Fatal(err)
	}

	// Tombstone a spread: one per region plus a run across the chunk seam.
	doomed := []int{0, 5, storage.ChunkRows - 1, storage.ChunkRows, 2*storage.ChunkRows - 1, 2 * storage.ChunkRows, n - 1}
	if got := tbl.Delete(doomed); got != len(doomed) {
		t.Fatalf("Delete = %d, want %d", got, len(doomed))
	}
	if got := tbl.Tombstones(); got != len(doomed) {
		t.Fatalf("Tombstones = %d, want %d", got, len(doomed))
	}
	if got := tbl.NumRows(); got != n-len(doomed) {
		t.Fatalf("NumRows after delete = %d, want %d", got, n-len(doomed))
	}

	// Add a column and fill it for every live row, in scan order.
	if _, err := tbl.AddColumn(storage.Column{Name: "flag", Kind: storage.KindBool, Origin: storage.ColumnExpanded}); err != nil {
		t.Fatal(err)
	}
	fill := make([]storage.Value, 0, tbl.NumRows())
	tbl.Scan(func(i int, row storage.Row) bool {
		fill = append(fill, storage.Bool(i%2 == 0))
		return true
	})
	if err := tbl.FillColumn("flag", fill); err != nil {
		t.Fatal(err)
	}

	// Verify: deleted rows invisible, mutations visible, fill landed.
	dead := map[int]bool{}
	for _, i := range doomed {
		dead[i] = true
	}
	seen := 0
	var scanErr error
	tbl.Scan(func(i int, row storage.Row) bool {
		seen++
		if dead[i] {
			scanErr = fmt.Errorf("tombstoned row %d visible in scan", i)
			return false
		}
		id, _ := row[0].AsInt()
		if int(id) != i {
			scanErr = fmt.Errorf("row %d has id %d", i, id)
			return false
		}
		want := fmt.Sprintf("row-%05d", i)
		if i == 17 {
			want = "mutated-sealed"
		}
		if i == n-3 {
			want = "mutated-tail"
		}
		if s, _ := row[1].AsText(); s != want {
			scanErr = fmt.Errorf("row %d name = %q, want %q", i, s, want)
			return false
		}
		if b, ok := row[2].AsBool(); !ok || b != (i%2 == 0) {
			scanErr = fmt.Errorf("row %d flag = (%v,ok=%v)", i, b, ok)
			return false
		}
		return true
	})
	if scanErr != nil {
		t.Fatal(scanErr)
	}
	if seen != n-len(doomed) {
		t.Fatalf("scan visited %d rows, want %d", seen, n-len(doomed))
	}
}

// workload drives a representative mutation mix against a backend with a
// journal attached, compaction included, and returns the catalog.
func workload(t *testing.T, be storage.Backend) *storage.Catalog {
	t.Helper()
	c := be.Catalog()
	tbl := mustCreate(t, c, "items",
		storage.Column{Name: "id", Kind: storage.KindInt},
		storage.Column{Name: "name", Kind: storage.KindText})
	n := storage.ChunkRows + 500
	seedRows(t, tbl, n)
	if err := tbl.Set(42, 1, storage.Text("answer")); err != nil {
		t.Fatal(err)
	}
	var doomed []int
	for i := 0; i < storage.ChunkRows; i += 3 {
		doomed = append(doomed, i)
	}
	tbl.Delete(doomed)
	if _, err := tbl.AddColumn(storage.Column{Name: "flag", Kind: storage.KindBool, Origin: storage.ColumnExpanded}); err != nil {
		t.Fatal(err)
	}
	fill := make([]storage.Value, 0, tbl.NumRows())
	tbl.Scan(func(i int, row storage.Row) bool {
		fill = append(fill, storage.Bool(i%2 == 0))
		return true
	})
	if err := tbl.FillColumn("flag", fill); err != nil {
		t.Fatal(err)
	}
	// Compact (removes the tombstones, remaps physical IDs), then mutate
	// again so the stream contains records referencing post-compaction IDs.
	res, err := be.Compact("items", storage.CompactionPolicy{Force: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Compacted {
		t.Fatalf("forced compaction skipped: %+v", res)
	}
	if err := tbl.Set(7, 1, storage.Text("post-compaction")); err != nil {
		t.Fatal(err)
	}
	tbl.Delete([]int{11})
	// A second table proves multi-table streams replay.
	other := mustCreate(t, c, "other", storage.Column{Name: "x", Kind: storage.KindInt})
	for i := 0; i < 10; i++ {
		if err := other.Insert(storage.Int(int64(i * i))); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

func testCrashReplay(t *testing.T, factory Factory) {
	live := factory(t, t.TempDir())
	rec := &opRecorder{}
	live.Catalog().SetJournal(rec)
	workload(t, live)

	// "Crash": rebuild a fresh backend purely from the op stream, exactly
	// as core's WAL recovery does.
	recovered := factory(t, t.TempDir())
	for i, op := range rec.snapshot() {
		if err := recovered.ApplyOp(op); err != nil {
			t.Fatalf("replay op %d (%s %s): %v", i, op.Kind, op.Table, err)
		}
	}
	want := dumpCatalog(t, live.Catalog())
	got := dumpCatalog(t, recovered.Catalog())
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("replayed state diverged\nwant: %+v\ngot:  %+v", want, got)
	}
}

func testSnapshotRoundTrip(t *testing.T, factory Factory) {
	// Both backends share one data directory: Restore resolves external
	// state (e.g. filebackend shards) against the dir Capture wrote to,
	// exactly as a restart does.
	dir := t.TempDir()
	live := factory(t, dir)
	workload(t, live)
	states, err := live.Capture()
	if err != nil {
		t.Fatalf("Capture: %v", err)
	}

	restored := factory(t, dir)
	if err := restored.Restore(states); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	want := dumpCatalog(t, live.Catalog())
	got := dumpCatalog(t, restored.Catalog())
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("restored state diverged\nwant: %+v\ngot:  %+v", want, got)
	}

	// Physical row IDs must survive the round trip: a WAL record logged
	// after the snapshot references them. Apply one to both and re-compare.
	op := storage.Op{Kind: storage.OpSet, Table: "items", Row: 9, Col: 1,
		Values: []storage.Value{storage.Text("post-snapshot")}}
	tbl, _ := live.Catalog().Get("items")
	if err := tbl.Set(op.Row, op.Col, op.Values[0]); err != nil {
		t.Fatal(err)
	}
	if err := restored.ApplyOp(op); err != nil {
		t.Fatalf("ApplyOp on restored backend: %v", err)
	}
	if !reflect.DeepEqual(dumpCatalog(t, live.Catalog()), dumpCatalog(t, restored.Catalog())) {
		t.Fatal("post-snapshot mutation diverged: physical row IDs did not survive Restore")
	}
}

func testCompaction(t *testing.T, factory Factory) {
	be := factory(t, t.TempDir())
	c := be.Catalog()
	tbl := mustCreate(t, c, "items",
		storage.Column{Name: "id", Kind: storage.KindInt},
		storage.Column{Name: "name", Kind: storage.KindText})
	n := 2*storage.ChunkRows + 50
	seedRows(t, tbl, n)

	// Tombstone ~half the sealed region — above the default 30% density
	// threshold — plus a couple of tail rows.
	var doomed []int
	for i := 0; i < 2*storage.ChunkRows; i += 2 {
		doomed = append(doomed, i)
	}
	doomed = append(doomed, n-1, n-10)
	tbl.Delete(doomed)

	res, err := be.Compact("items", storage.CompactionPolicy{MinTombstoneFrac: storage.DefaultCompactionFrac})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Compacted {
		t.Fatalf("compaction skipped (%s) at %d/%d sealed tombstones", res.Skipped, len(doomed)-2, 2*storage.ChunkRows)
	}
	// The acceptance bar is ≥90% of sealed tombstoned rows reclaimed; this
	// engine reclaims all of them, tail included.
	if res.RowsReclaimed != len(doomed) {
		t.Fatalf("RowsReclaimed = %d, want %d", res.RowsReclaimed, len(doomed))
	}
	if got := tbl.Tombstones(); got != 0 {
		t.Fatalf("Tombstones after compaction = %d, want 0", got)
	}
	if got := tbl.NumRows(); got != n-len(doomed) {
		t.Fatalf("NumRows after compaction = %d, want %d", got, n-len(doomed))
	}

	// Every survivor is intact and exactly once, in its original order.
	wantID := int64(1) // id 0 was even → deleted
	var scanErr error
	survivors := 0
	tbl.Scan(func(i int, row storage.Row) bool {
		survivors++
		id, _ := row[0].AsInt()
		if id != wantID {
			scanErr = fmt.Errorf("physical row %d: id = %d, want %d", i, id, wantID)
			return false
		}
		if s, _ := row[1].AsText(); s != fmt.Sprintf("row-%05d", id) {
			scanErr = fmt.Errorf("id %d: name = %q", id, s)
			return false
		}
		// Advance to the next surviving id: odds below 2*ChunkRows, then
		// every tail id except the two deleted ones.
		for {
			wantID++
			if wantID < int64(2*storage.ChunkRows) {
				if wantID%2 == 1 {
					break
				}
				continue
			}
			if wantID != int64(n-1) && wantID != int64(n-10) {
				break
			}
		}
		return true
	})
	if scanErr != nil {
		t.Fatal(scanErr)
	}
	if survivors != n-len(doomed) {
		t.Fatalf("scan visited %d survivors, want %d", survivors, n-len(doomed))
	}

	// A second pass has nothing to do.
	res, err = be.Compact("items", storage.CompactionPolicy{MinTombstoneFrac: storage.DefaultCompactionFrac})
	if err != nil {
		t.Fatal(err)
	}
	if res.Compacted || res.Skipped != storage.CompactSkipClean {
		t.Fatalf("second pass = %+v, want clean skip", res)
	}
}

func testIndexRebuild(t *testing.T, factory Factory) {
	be := factory(t, t.TempDir())
	c := be.Catalog()
	tbl := mustCreate(t, c, "items",
		storage.Column{Name: "id", Kind: storage.KindInt},
		storage.Column{Name: "name", Kind: storage.KindText})
	seedRows(t, tbl, storage.ChunkRows+200)

	hash, err := index.New(index.KindHash, "idx_hash_id", "id")
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.AttachIndex(hash); err != nil {
		t.Fatal(err)
	}
	ordered, err := index.New(index.KindOrdered, "idx_ord_id", "id")
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.AttachIndex(ordered); err != nil {
		t.Fatal(err)
	}

	probeHash := func(id int64) []int {
		t.Helper()
		v := storage.Int(id)
		snap, ids, err := tbl.PinIndexProbe("idx_hash_id", storage.IndexProbe{Key: []storage.Value{v}})
		if err != nil {
			t.Fatalf("hash probe %d: %v", id, err)
		}
		snap.Release()
		return ids
	}

	// Mutations the maintenance hooks track...
	tbl.Delete([]int{100})
	if err := tbl.Set(200, 0, storage.Int(999999)); err != nil {
		t.Fatal(err)
	}
	// ...then a bulk rebuild through the seam must agree.
	if err := be.RebuildIndexes("items"); err != nil {
		t.Fatal(err)
	}
	if ids := probeHash(100); len(ids) != 0 {
		t.Fatalf("deleted key 100 still indexed: %v", ids)
	}
	if ids := probeHash(999999); len(ids) != 1 || ids[0] != 200 {
		t.Fatalf("moved key 999999 → %v, want [200]", ids)
	}
	if ids := probeHash(200); len(ids) != 0 {
		t.Fatalf("stale key 200 still indexed: %v", ids)
	}

	// Ordered range over the tail end of the domain.
	lo := storage.Int(int64(storage.ChunkRows + 190))
	snap, ids, err := tbl.PinIndexProbe("idx_ord_id", storage.IndexProbe{Lo: &lo, LoInc: true})
	if err != nil {
		t.Fatal(err)
	}
	snap.Release()
	// ids ChunkRows+190 .. ChunkRows+199, plus the 999999 row.
	if len(ids) != 11 {
		t.Fatalf("range probe returned %d ids (%v), want 11", len(ids), ids)
	}
	if ids[len(ids)-1] != 200 {
		t.Fatalf("range probe last id = %d, want 200 (the 999999 row)", ids[len(ids)-1])
	}
}

func testChunkIteration(t *testing.T, factory Factory) {
	be := factory(t, t.TempDir())
	c := be.Catalog()
	tbl := mustCreate(t, c, "items",
		storage.Column{Name: "id", Kind: storage.KindInt},
		storage.Column{Name: "name", Kind: storage.KindText})
	n := storage.ChunkRows + 321
	seedRows(t, tbl, n)

	var sum, count int64
	starts := []int{}
	err := tbl.IterateChunks("id", func(start int, vals []storage.Value) bool {
		starts = append(starts, start)
		for _, v := range vals {
			if i, ok := v.AsInt(); ok {
				sum += i
				count++
			}
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(starts) != 2 || starts[0] != 0 || starts[1] != storage.ChunkRows {
		t.Fatalf("chunk starts = %v", starts)
	}
	if count != int64(n) || sum != int64(n)*int64(n-1)/2 {
		t.Fatalf("chunk iteration saw %d values summing %d, want %d summing %d",
			count, sum, n, int64(n)*int64(n-1)/2)
	}
}
