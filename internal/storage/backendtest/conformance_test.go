package backendtest_test

import (
	"testing"

	"crowddb/internal/storage"
	"crowddb/internal/storage/backendtest"

	// Register every backend implementation; the loop below enrolls each.
	_ "crowddb/internal/storage/filebackend"
	_ "crowddb/internal/storage/membackend"
)

// TestBackendConformance runs the seam contract against every registered
// backend. A new backend package only needs a blank import above to be
// enrolled.
func TestBackendConformance(t *testing.T) {
	names := storage.BackendNames()
	if len(names) < 2 {
		t.Fatalf("expected at least mem and file backends registered, got %v", names)
	}
	for _, name := range names {
		t.Run(name, func(t *testing.T) {
			backendtest.Run(t, func(t *testing.T, dir string) storage.Backend {
				be, err := storage.NewBackend(name)
				if err != nil {
					t.Fatal(err)
				}
				if err := be.Open(dir); err != nil {
					t.Fatal(err)
				}
				t.Cleanup(func() { _ = be.Close() })
				return be
			})
		})
	}
}
