package storage

import (
	"fmt"
	"math/bits"
	"sync"
)

// Tombstone compaction (see DESIGN.md §16).
//
// Delete tombstones rows instead of moving data, which keeps physical
// row IDs stable for open snapshots, index entries, and cursors — but
// leaks the dead rows' memory forever. Compact reclaims them: it
// rewrites the table's chunks without the tombstoned rows and publishes
// the result as a new version, remapping the surviving rows' physical
// IDs downward.
//
// Remapping is exactly the operation the rest of the engine is built to
// never observe, so admission is gated hard:
//
//   - No pinned snapshot may be live (Table.pins empty). A pinned reader
//     keeps its old version — immutable, so it could never see a row
//     vanish — but the physical IDs it yields would go stale against the
//     compacted table, and callers do hand such IDs back to mutators.
//   - No write fence may be held (Table.fences == 0). A fence marks a
//     caller that collected physical IDs from a scan and will mutate
//     through them shortly (UPDATE/DELETE, the HYBRID requery); the
//     fence/compaction exclusion makes scan-then-mutate atomic with
//     respect to remapping.
//
// Both checks and the compacting flag are manipulated under pinMu in one
// critical section, so a fence acquired after admission waits (on
// fenceCond) until the new version is published, and a compaction never
// starts while either class of ID holder is live. Pin itself NEVER
// waits: readers are snapshot-isolated and lock-free by design.
//
// Durability: the removed row IDs are logged as an OpCompact record
// before the rewrite, after admission has passed — a logged compaction
// always applied, and ReplayCompact removes exactly the same rows, so
// physical IDs in later WAL records resolve identically on recovery.

// DefaultCompactionFrac is the sealed-region tombstone density at which
// Compact proceeds when the policy does not set its own threshold.
const DefaultCompactionFrac = 0.30

// compactRebuildThreshold bounds point-wise index remapping: moving more
// survivors than this switches to a bulk Rebuild, which is O(n log n)
// instead of O(moved) ordered-index deletes through the delta buffer.
const compactRebuildThreshold = 32768

// CompactionPolicy tunes one Compact call.
type CompactionPolicy struct {
	// MinTombstoneFrac is the minimum tombstone density in the sealed
	// region (dead sealed rows / sealed rows) required to compact;
	// non-positive means DefaultCompactionFrac.
	MinTombstoneFrac float64
	// Force compacts any nonzero number of tombstones regardless of
	// density (the admin/test path).
	Force bool
}

// Compaction skip reasons, surfaced in CompactionResult.Skipped.
const (
	CompactSkipClean     = "no_tombstones"
	CompactSkipThreshold = "below_threshold"
	CompactSkipPinned    = "pinned_snapshots"
	CompactSkipFenced    = "write_fences"
)

// CompactionResult reports what one Compact call did.
type CompactionResult struct {
	Compacted       bool   `json:"compacted"`
	Skipped         string `json:"skipped,omitempty"` // reason when !Compacted
	RowsReclaimed   int    `json:"rows_reclaimed"`
	ChunksRewritten int    `json:"chunks_rewritten"`
	BytesFreed      int64  `json:"bytes_freed"`
	Epoch           uint64 `json:"epoch,omitempty"` // new version epoch
}

// CompactionStats is a table's cumulative compaction accounting,
// surfaced via GET /v1/schema/{table}.
type CompactionStats struct {
	Runs            int64  `json:"runs"`
	RowsReclaimed   int64  `json:"rows_reclaimed"`
	ChunksRewritten int64  `json:"chunks_rewritten"`
	BytesFreed      int64  `json:"bytes_freed"`
	LastEpoch       uint64 `json:"last_epoch,omitempty"`
}

// CompactionStats returns the table's cumulative compaction counters,
// lock-free.
func (t *Table) CompactionStats() CompactionStats {
	return CompactionStats{
		Runs:            t.compactRuns.Load(),
		RowsReclaimed:   t.compactRows.Load(),
		ChunksRewritten: t.compactChunks.Load(),
		BytesFreed:      t.compactBytes.Load(),
		LastEpoch:       t.compactLastEpoch.Load(),
	}
}

// Compact rewrites the table without its tombstoned rows, if the policy
// threshold is met and no pinned snapshot or write fence is live. It
// returns a result describing what happened (or why nothing did); the
// error path is reserved for journal failures.
func (t *Table) Compact(policy CompactionPolicy) (CompactionResult, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	v := t.snap.Load()
	if v.ndead == 0 {
		return CompactionResult{Skipped: CompactSkipClean}, nil
	}
	// Sealed-region tombstone density drives the threshold: tail rows are
	// cheap to carry (one partial chunk) and churn too fast to chase.
	sealedDead := 0
	for w := 0; w < v.sealed/64 && w < len(v.dead); w++ {
		sealedDead += bits.OnesCount64(v.dead[w])
	}
	if !policy.Force {
		if v.sealed == 0 || sealedDead == 0 {
			return CompactionResult{Skipped: CompactSkipClean}, nil
		}
		minFrac := policy.MinTombstoneFrac
		if minFrac <= 0 {
			minFrac = DefaultCompactionFrac
		}
		if float64(sealedDead)/float64(v.sealed) < minFrac {
			return CompactionResult{Skipped: CompactSkipThreshold}, nil
		}
	}

	// Admission: atomically verify no ID holder is live and latch the
	// compacting flag, all under pinMu. From here until the deferred
	// clear, new write fences block on fenceCond.
	t.pinMu.Lock()
	switch {
	case len(t.pins) > 0:
		t.pinMu.Unlock()
		return CompactionResult{Skipped: CompactSkipPinned}, nil
	case t.fences > 0:
		t.pinMu.Unlock()
		return CompactionResult{Skipped: CompactSkipFenced}, nil
	}
	t.compacting = true
	t.pinMu.Unlock()
	defer func() {
		t.pinMu.Lock()
		t.compacting = false
		if t.fenceCond != nil {
			t.fenceCond.Broadcast()
		}
		t.pinMu.Unlock()
	}()

	removed := make([]int, 0, v.ndead)
	for i := 0; i < v.nrows; i++ {
		if v.isDead(i) {
			removed = append(removed, i)
		}
	}
	// Log after admission, before the rewrite: a logged OpCompact always
	// applied, so replay removes exactly these rows at exactly this point.
	if err := t.logOp(Op{Kind: OpCompact, Table: t.name, Rows: removed}); err != nil {
		return CompactionResult{}, err
	}

	var bytesFreed int64
	width := v.schema.Len()
	for _, i := range removed {
		for c := 0; c < width; c++ {
			bytesFreed += approxValueBytes(v.value(i, c))
		}
	}
	chunksRewritten := 0
	if len(removed) > 0 && removed[0] < v.sealed {
		chunksRewritten = v.sealed/ChunkRows - removed[0]/ChunkRows
	}

	nv, moved := compactApply(v, removed)
	t.publish(nv, func() {
		t.remapIndexes(nv, moved)
	})

	t.compactRuns.Add(1)
	t.compactRows.Add(int64(len(removed)))
	t.compactChunks.Add(int64(chunksRewritten))
	t.compactBytes.Add(bytesFreed)
	t.compactLastEpoch.Store(nv.epoch)
	mCompactionRuns.Inc()
	mCompactionRows.Add(int64(len(removed)))
	t.notify(Op{Kind: OpCompact, Table: t.name})
	return CompactionResult{
		Compacted:       true,
		RowsReclaimed:   len(removed),
		ChunksRewritten: chunksRewritten,
		BytesFreed:      bytesFreed,
		Epoch:           nv.epoch,
	}, nil
}

// ReplayCompact applies a recovered OpCompact record: remove exactly the
// listed physical rows and shift survivors down. Replay-only — it never
// logs, and no gating is needed (recovery is single-threaded with no
// pins or fences). Indexes are bulk-rebuilt; point-wise remapping buys
// nothing when replay re-attaches them afterwards anyway.
func (t *Table) ReplayCompact(rows []int) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(rows) == 0 {
		return 0
	}
	v := t.snap.Load()
	nv, _ := compactApply(v, rows)
	reclaimed := v.nrows - nv.nrows
	t.publish(nv, func() {
		for _, idx := range t.indexes {
			t.rebuildIndex(idx, nv)
		}
	})
	t.compactRuns.Add(1)
	t.compactRows.Add(int64(reclaimed))
	t.compactLastEpoch.Store(nv.epoch)
	t.notify(Op{Kind: OpCompact, Table: t.name})
	return reclaimed
}

// compactApply builds the successor version of v without the rows listed
// in kill (physical IDs; out-of-range entries ignored), re-chunking every
// column, and returns it together with the (oldID, newID) pairs of the
// survivors whose IDs shifted. Tombstone bits of surviving rows are
// carried over (live compaction removes all dead rows, so this matters
// only for replayed records).
func compactApply(v *version, kill []int) (*version, [][2]int) {
	killBits := make([]uint64, (v.nrows+63)/64)
	nkill := 0
	for _, i := range kill {
		if i >= 0 && i < v.nrows && killBits[i>>6]&(1<<(uint(i)&63)) == 0 {
			killBits[i>>6] |= 1 << (uint(i) & 63)
			nkill++
		}
	}
	width := v.schema.Len()
	nkeep := v.nrows - nkill
	cols := make([][]Value, width)
	for c := range cols {
		cols[c] = make([]Value, 0, nkeep)
	}
	var moved [][2]int
	var newDead []uint64
	ndead := 0
	newID := 0
	for i := 0; i < v.nrows; i++ {
		if killBits[i>>6]&(1<<(uint(i)&63)) != 0 {
			continue
		}
		for c := 0; c < width; c++ {
			cols[c] = append(cols[c], v.value(i, c))
		}
		if v.isDead(i) {
			if newDead == nil {
				newDead = make([]uint64, (nkeep+63)/64)
			}
			setDead(newDead, newID)
			ndead++
		}
		if i != newID {
			moved = append(moved, [2]int{i, newID})
		}
		newID++
	}
	nv := newVersion(v.schema)
	nv.epoch = v.epoch + 1
	nv.nrows = newID
	nv.sealed = newID / ChunkRows * ChunkRows
	for c := 0; c < width; c++ {
		nv.cols[c] = buildColData(cols[c])
	}
	nv.dead = newDead
	nv.ndead = ndead
	return nv, moved
}

// remapIndexes rewrites index entries for the moved survivors. Caller
// holds t.idxMu (write, via publish). Point-wise remapping in ascending
// oldID order is collision-free: a moved row's new ID was previously
// either a tombstoned row (no entry — Delete removed it) or an
// earlier-processed moved survivor (entry already rewritten); an unmoved
// survivor's ID is never reassigned because new IDs are allocated in
// order. Past compactRebuildThreshold moves a bulk Rebuild wins.
func (t *Table) remapIndexes(nv *version, moved [][2]int) {
	for _, idx := range t.indexes {
		if len(moved) > compactRebuildThreshold {
			t.rebuildIndex(idx, nv)
			continue
		}
		for _, m := range moved {
			// The key is identical in both versions; read it at the new ID.
			if key, ok := indexKeyOf(idx, nv, m[1]); ok {
				idx.Remove(m[0], key)
				idx.Add(m[1], key)
			}
		}
	}
}

// approxValueBytes estimates a value's in-memory footprint for the
// bytes-freed counter (struct header plus text payload).
func approxValueBytes(v Value) int64 {
	if v.kind == KindText {
		return 40 + int64(len(v.s))
	}
	return 40
}

// --- write fences ---

// AcquireWriteFence marks the caller as holding physical row IDs across
// a scan→mutate window: while any fence is held, Compact refuses
// admission, and while a compaction is publishing, acquisition waits —
// so the IDs a fenced caller collected stay valid until it releases.
// Fences are shared (any number may be held at once); they do not block
// normal mutations or each other. Callers must pair with
// ReleaseWriteFence, or use WithWriteFence.
func (t *Table) AcquireWriteFence() {
	t.pinMu.Lock()
	for t.compacting {
		if t.fenceCond == nil {
			t.fenceCond = sync.NewCond(&t.pinMu)
		}
		t.fenceCond.Wait()
	}
	t.fences++
	t.pinMu.Unlock()
}

// ReleaseWriteFence releases a fence taken by AcquireWriteFence.
func (t *Table) ReleaseWriteFence() {
	t.pinMu.Lock()
	if t.fences > 0 {
		t.fences--
	}
	t.pinMu.Unlock()
}

// WithWriteFence runs fn under a write fence.
func (t *Table) WithWriteFence(fn func() error) error {
	t.AcquireWriteFence()
	defer t.ReleaseWriteFence()
	return fn()
}

// --- chunk iteration (Backend contract) ---

// IterateChunks streams the named column's storage windows of the
// current snapshot — each sealed chunk, then the tail — calling fn with
// the window's starting physical row ID and its values. A nil vals slice
// is an all-NULL window (the unfilled-expansion representation).
// Returning false stops the iteration. The slices are the live chunk
// backing arrays: read-only, valid indefinitely (chunks are immutable).
func (t *Table) IterateChunks(column string, fn func(start int, vals []Value) bool) error {
	v := t.snap.Load()
	col, ok := v.schema.Lookup(column)
	if !ok {
		return fmt.Errorf("storage: table %s has no column %q", t.name, column)
	}
	for lo := 0; lo < v.sealed; lo += ChunkRows {
		w, err := v.window(col, lo, lo+ChunkRows)
		if err != nil {
			return err
		}
		if !fn(lo, w) {
			return nil
		}
	}
	if v.nrows > v.sealed {
		w, err := v.window(col, v.sealed, v.nrows)
		if err != nil {
			return err
		}
		fn(v.sealed, w)
	}
	return nil
}

// RebuildIndexes rebuilds every attached index from the current
// snapshot — the Backend rebuild hook, used after a bulk restore.
func (t *Table) RebuildIndexes() {
	t.mu.Lock()
	defer t.mu.Unlock()
	v := t.snap.Load()
	t.idxMu.Lock()
	defer t.idxMu.Unlock()
	for _, idx := range t.indexes {
		t.rebuildIndex(idx, v)
	}
}
