package storage

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func compactTestTable(t *testing.T, n int) *Table {
	t.Helper()
	schema, err := NewSchema(
		Column{Name: "id", Kind: KindInt},
		Column{Name: "val", Kind: KindInt},
	)
	if err != nil {
		t.Fatal(err)
	}
	tbl := NewTable("items", schema)
	for i := 0; i < n; i++ {
		if err := tbl.Insert(Int(int64(i)), Int(int64(i*2))); err != nil {
			t.Fatal(err)
		}
	}
	return tbl
}

func TestCompactThresholdAndSkipReasons(t *testing.T) {
	tbl := compactTestTable(t, 2*ChunkRows)

	// Clean table: nothing to do.
	res, err := tbl.Compact(CompactionPolicy{Force: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Compacted || res.Skipped != CompactSkipClean {
		t.Fatalf("clean table: %+v", res)
	}

	// 10% sealed density: below the 30% default.
	var doomed []int
	for i := 0; i < 2*ChunkRows; i += 10 {
		doomed = append(doomed, i)
	}
	tbl.Delete(doomed)
	res, err = tbl.Compact(CompactionPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Compacted || res.Skipped != CompactSkipThreshold {
		t.Fatalf("10%% density with default threshold: %+v", res)
	}

	// An explicit lower threshold admits it.
	res, err = tbl.Compact(CompactionPolicy{MinTombstoneFrac: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Compacted || res.RowsReclaimed != len(doomed) {
		t.Fatalf("5%% threshold: %+v", res)
	}
	if got := tbl.Tombstones(); got != 0 {
		t.Fatalf("tombstones after compaction = %d", got)
	}

	// Force bypasses the threshold entirely.
	tbl.Delete([]int{3})
	res, err = tbl.Compact(CompactionPolicy{Force: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Compacted || res.RowsReclaimed != 1 {
		t.Fatalf("forced single-tombstone compaction: %+v", res)
	}
}

func TestCompactSkipsPinnedSnapshotsAndFences(t *testing.T) {
	tbl := compactTestTable(t, ChunkRows)
	tbl.Delete([]int{1, 2, 3})

	// A pinned snapshot (here held by an open cursor) blocks admission:
	// the IDs it yields must stay resolvable against the live table.
	cur := tbl.NewCursor(64)
	res, err := tbl.Compact(CompactionPolicy{Force: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Compacted || res.Skipped != CompactSkipPinned {
		t.Fatalf("compaction under pin: %+v", res)
	}
	cur.Close()

	// A write fence blocks admission the same way.
	tbl.AcquireWriteFence()
	res, err = tbl.Compact(CompactionPolicy{Force: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Compacted || res.Skipped != CompactSkipFenced {
		t.Fatalf("compaction under fence: %+v", res)
	}
	tbl.ReleaseWriteFence()

	res, err = tbl.Compact(CompactionPolicy{Force: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Compacted || res.RowsReclaimed != 3 {
		t.Fatalf("compaction after releases: %+v", res)
	}
}

func TestFenceWaitsForCompaction(t *testing.T) {
	tbl := compactTestTable(t, 16)

	// Latch the compacting flag as Compact's admission does; a fence
	// acquisition must park until it clears.
	tbl.pinMu.Lock()
	tbl.compacting = true
	tbl.pinMu.Unlock()

	acquired := make(chan struct{})
	go func() {
		tbl.AcquireWriteFence()
		close(acquired)
	}()
	select {
	case <-acquired:
		t.Fatal("fence acquired while compaction in progress")
	case <-time.After(20 * time.Millisecond):
	}

	tbl.pinMu.Lock()
	tbl.compacting = false
	if tbl.fenceCond != nil {
		tbl.fenceCond.Broadcast()
	}
	tbl.pinMu.Unlock()

	select {
	case <-acquired:
	case <-time.After(2 * time.Second):
		t.Fatal("fence never acquired after compaction cleared")
	}
	tbl.ReleaseWriteFence()
}

// Real hash/ordered index implementations are exercised through the
// backend conformance suite (internal/storage/backendtest), which can
// import internal/index without a cycle; here fakeIndex (see
// index_cursor_test.go) observes the remap calls.
func TestCompactRemapsIndexesPointwise(t *testing.T) {
	tbl := compactTestTable(t, ChunkRows+100)
	if err := tbl.AttachIndex(newFakeIndex("by_id", "id")); err != nil {
		t.Fatal(err)
	}

	// Remove the first 50 rows; every survivor shifts down by 50.
	var doomed []int
	for i := 0; i < 50; i++ {
		doomed = append(doomed, i)
	}
	tbl.Delete(doomed)
	res, err := tbl.Compact(CompactionPolicy{Force: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Compacted {
		t.Fatalf("compaction skipped: %+v", res)
	}

	for _, id := range []int64{50, 51, int64(ChunkRows), int64(ChunkRows + 99)} {
		v := Int(id)
		snap, ids, err := tbl.PinIndexProbe("by_id", IndexProbe{Point: &v})
		if err != nil {
			t.Fatalf("probe %d: %v", id, err)
		}
		snap.Release()
		want := int(id) - 50
		if len(ids) != 1 || ids[0] != want {
			t.Fatalf("hash probe id=%d → %v, want [%d]", id, ids, want)
		}
		// The remapped entry must resolve to the right row.
		got, err := tbl.Value(ids[0], 0)
		if err != nil {
			t.Fatal(err)
		}
		if n, _ := got.AsInt(); n != id {
			t.Fatalf("row %d id = %d, want %d", ids[0], n, id)
		}
	}

	// Removed keys are gone.
	v := Int(10)
	snap, ids, err := tbl.PinIndexProbe("by_id", IndexProbe{Point: &v})
	if err != nil {
		t.Fatal(err)
	}
	snap.Release()
	if len(ids) != 0 {
		t.Fatalf("compacted-away key 10 still indexed: %v", ids)
	}
}

func TestCompactBulkRebuildPastThreshold(t *testing.T) {
	if testing.Short() {
		t.Skip("bulk-threshold compaction is slow")
	}
	// Removing row 0 of a compactRebuildThreshold+2-row table moves more
	// survivors than the point-wise limit, forcing the Rebuild path.
	n := compactRebuildThreshold + 2
	tbl := compactTestTable(t, n)
	if err := tbl.AttachIndex(newFakeIndex("by_id", "id")); err != nil {
		t.Fatal(err)
	}
	tbl.Delete([]int{0})
	res, err := tbl.Compact(CompactionPolicy{Force: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Compacted || res.RowsReclaimed != 1 {
		t.Fatalf("compaction: %+v", res)
	}
	for _, id := range []int64{1, int64(n - 1)} {
		v := Int(id)
		snap, ids, err := tbl.PinIndexProbe("by_id", IndexProbe{Point: &v})
		if err != nil {
			t.Fatal(err)
		}
		snap.Release()
		if len(ids) != 1 || ids[0] != int(id)-1 {
			t.Fatalf("probe id=%d after bulk rebuild → %v, want [%d]", id, ids, id-1)
		}
	}
}

func TestCompactCountersAccumulate(t *testing.T) {
	tbl := compactTestTable(t, ChunkRows)
	tbl.Delete([]int{0, 1})
	if _, err := tbl.Compact(CompactionPolicy{Force: true}); err != nil {
		t.Fatal(err)
	}
	tbl.Delete([]int{5})
	if _, err := tbl.Compact(CompactionPolicy{Force: true}); err != nil {
		t.Fatal(err)
	}
	st := tbl.CompactionStats()
	if st.Runs != 2 || st.RowsReclaimed != 3 {
		t.Fatalf("stats = %+v, want 2 runs reclaiming 3 rows", st)
	}
	if st.BytesFreed <= 0 || st.LastEpoch == 0 {
		t.Fatalf("stats missing accounting: %+v", st)
	}
}

// TestCompactionRacesPinnedCursorsAndFill is the nightly -race stress:
// compaction runs against concurrent cursor scans (pinned snapshots),
// fenced scan→delete writers, inserts, and continuous FillColumn. The
// per-row invariant val == 2*id catches any remap that pairs one row's
// id with another's payload; id uniqueness within a single cursor
// catches duplication; -race catches unsynchronized access.
func TestCompactionRacesPinnedCursorsAndFill(t *testing.T) {
	schema, err := NewSchema(
		Column{Name: "id", Kind: KindInt},
		Column{Name: "val", Kind: KindInt},
		Column{Name: "flag", Kind: KindBool},
	)
	if err != nil {
		t.Fatal(err)
	}
	tbl := NewTable("items", schema)
	var nextID atomic.Int64
	insert := func() error {
		id := nextID.Add(1) - 1
		return tbl.Insert(Int(id), Int(2*id), Bool(false))
	}
	for i := 0; i < 2000; i++ {
		if err := insert(); err != nil {
			t.Fatal(err)
		}
	}

	duration := 2 * time.Second
	if testing.Short() {
		duration = 200 * time.Millisecond
	}
	deadline := time.Now().Add(duration)
	var wg sync.WaitGroup
	fail := make(chan error, 16)
	report := func(err error) {
		select {
		case fail <- err:
		default:
		}
	}

	// Writers: insert a batch, then tombstone a few rows through a write
	// fence (the scan→Delete window must survive concurrent remapping).
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for time.Now().Before(deadline) {
				for i := 0; i < 20; i++ {
					if err := insert(); err != nil {
						report(err)
						return
					}
				}
				err := tbl.WithWriteFence(func() error {
					var doomed []int
					skip := rng.Intn(50)
					tbl.Scan(func(i int, row Row) bool {
						if skip > 0 {
							skip--
							return true
						}
						doomed = append(doomed, i)
						return len(doomed) < 10
					})
					tbl.Delete(doomed)
					return nil
				})
				if err != nil {
					report(err)
					return
				}
			}
		}(int64(w))
	}

	// Filler: continuously rewrite the flag column. Live-count races make
	// length mismatches expected; only other errors are failures.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for time.Now().Before(deadline) {
			n := 0
			tbl.Scan(func(int, Row) bool { n++; return true })
			vals := make([]Value, n)
			for i := range vals {
				vals[i] = Bool(i%2 == 0)
			}
			if err := tbl.FillColumn("flag", vals); err != nil {
				continue
			}
		}
	}()

	// Compactor: force a sweep whenever admission allows.
	var compactions atomic.Int64
	wg.Add(1)
	go func() {
		defer wg.Done()
		for time.Now().Before(deadline) {
			res, err := tbl.Compact(CompactionPolicy{Force: true})
			if err != nil {
				report(err)
				return
			}
			if res.Compacted {
				compactions.Add(1)
			}
			time.Sleep(100 * time.Microsecond)
		}
	}()

	// Readers: batched cursors (each pins its snapshot) asserting the
	// invariants row by row.
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for time.Now().Before(deadline) {
				cur := tbl.NewCursor(64)
				seen := make(map[int64]bool)
				for {
					row, ok := cur.Next()
					if !ok {
						break
					}
					id, _ := row[0].AsInt()
					val, _ := row[1].AsInt()
					if val != 2*id {
						report(fmt.Errorf("row id=%d carries val=%d (want %d): cross-row remap", id, val, 2*id))
						cur.Close()
						return
					}
					if seen[id] {
						report(fmt.Errorf("id %d surfaced twice in one snapshot", id))
						cur.Close()
						return
					}
					seen[id] = true
				}
				if err := cur.Err(); err != nil {
					report(err)
					return
				}
				cur.Close()
				// Breathe between scans: a reader that re-pins instantly
				// starves compaction admission forever, which is not the
				// workload shape this test is about.
				time.Sleep(2 * time.Millisecond)
			}
		}()
	}

	wg.Wait()
	select {
	case err := <-fail:
		t.Fatal(err)
	default:
	}
	if compactions.Load() == 0 {
		t.Error("stress run completed without a single successful compaction")
	}
}
