package storage

import "fmt"

// Cursor streams a table snapshot in batches with zero locks on the hot
// path: it pins the table's MVCC snapshot at creation and walks the
// immutable column chunks directly, so long scans never contend with
// writers — not even a bulk crowd FillColumn landing mid-scan. Each
// refill evaluates the vectorized predicates (SetPreds) chunk-at-a-time
// into a selection bitmap, then materializes only the selected rows into
// one reusable batch buffer; the residual filter closure (SetFilter)
// runs per selected row for predicates the planner could not vectorize.
//
// Consistency: the whole scan observes exactly the snapshot pinned at
// creation. Mutations applied after creation — Set, Delete, FillColumn,
// Insert — are invisible; in particular a concurrent Delete can no
// longer skip or duplicate rows (physical IDs are stable and the
// snapshot's tombstone bitmap is frozen).
//
// Decode errors (a torn chunk, possible only through corruption) surface
// through Next→Err with the table name and row position instead of
// silently ending the scan.
//
// The Row returned by Next aliases the cursor's internal buffer and is
// valid only until the following Next call; callers that retain rows
// (sorts, hash builds) must Clone them.
type Cursor struct {
	snap  *Snap
	v     *version
	width int // column count fixed at cursor creation
	owns  bool

	next  int // next physical row to consider
	limit int // exclusive upper physical row

	preds  []Pred
	filter func(Row) (bool, error)

	// Current window state: physical rows [winLo, winLo+winN), selection
	// bitmap sel, and per-column contiguous value slices (nil = all-NULL).
	winLo   int
	winN    int
	winPos  int // next offset within the window
	sel     []uint64
	colWins [][]Value

	buf  []Value // batch backing array, reused across refills
	hdrs []Row   // row headers into buf, reused across refills
	n    int     // rows in the current batch
	pos  int     // consumed rows of the current batch
	err  error
	done bool
}

// DefaultBatchSize is the cursor batch size used when 0 is passed.
const DefaultBatchSize = 256

// NewCursor creates a batched cursor over the table's current snapshot.
func (t *Table) NewCursor(batchSize int) *Cursor {
	return t.NewRangeCursor(0, -1, batchSize)
}

// NewRangeCursor creates a cursor over the physical-row window [lo, hi)
// of a snapshot pinned now — the partitioning primitive for
// morsel-parallel scans: disjoint windows of the same snapshot can be
// read by concurrent cursors with no coordination at all. hi < 0 means
// "to the end of the snapshot". Tombstoned rows inside the window are
// skipped. The cursor owns its snapshot pin and releases it when the
// scan is exhausted or Closed.
func (t *Table) NewRangeCursor(lo, hi, batchSize int) *Cursor {
	c := newCursorOn(t.Pin(), lo, hi, batchSize)
	c.owns = true
	return c
}

// NewRangeCursorAt creates a cursor over [lo, hi) of an already-pinned
// snapshot. The caller keeps ownership of snap — morsel workers share
// one pin across all their window cursors and release it once.
func NewRangeCursorAt(snap *Snap, lo, hi, batchSize int) *Cursor {
	return newCursorOn(snap, lo, hi, batchSize)
}

func newCursorOn(snap *Snap, lo, hi, batchSize int) *Cursor {
	if batchSize <= 0 {
		batchSize = DefaultBatchSize
	}
	if lo < 0 {
		lo = 0
	}
	v := snap.v
	if hi < 0 || hi > v.nrows {
		hi = v.nrows
	}
	width := v.schema.Len()
	return &Cursor{
		snap:  snap,
		v:     v,
		width: width,
		next:  lo,
		limit: hi,
		buf:   make([]Value, batchSize*width),
		hdrs:  make([]Row, batchSize),
	}
}

// SetFilter installs a residual predicate evaluated per selected row
// during refill, before the row is surfaced. The Row passed to f aliases
// the batch buffer and must not be retained or mutated.
func (c *Cursor) SetFilter(f func(Row) (bool, error)) { c.filter = f }

// SetPreds installs vectorized predicates, ANDed together and with the
// residual filter. They are evaluated per chunk window into a selection
// bitmap — no per-row closure call, no row materialization for
// non-matching rows.
func (c *Cursor) SetPreds(preds []Pred) { c.preds = preds }

// Next returns the next matching row, or ok=false at the end of the scan
// (check Err afterwards). The returned Row is valid until the next call.
func (c *Cursor) Next() (Row, bool) {
	for c.pos >= c.n {
		if c.err != nil || c.done {
			c.Close()
			return nil, false
		}
		c.refill()
	}
	row := c.hdrs[c.pos]
	c.pos++
	return row, true
}

// Err returns the first filter or decode error encountered, if any.
func (c *Cursor) Err() error { return c.err }

// Close releases the cursor's snapshot pin (if it owns one). It is
// called automatically when the scan ends; callers abandoning a cursor
// early should call it themselves. Idempotent.
func (c *Cursor) Close() {
	if c.owns {
		c.snap.Release()
	}
}

// loadWindow positions the window machinery over the next span of
// physical rows: [c.next, min(limit, next chunk boundary)). Reports
// false when the scan range is exhausted.
func (c *Cursor) loadWindow() bool {
	if c.next >= c.limit {
		return false
	}
	v := c.v
	lo := c.next
	hi := lo/ChunkRows*ChunkRows + ChunkRows // next chunk boundary
	if lo >= v.sealed {
		hi = v.nrows // the tail is one window
	}
	if hi > c.limit {
		hi = c.limit
	}
	n := hi - lo
	words := (n + 63) / 64
	if cap(c.sel) < words {
		c.sel = make([]uint64, words)
	}
	c.sel = c.sel[:words]
	fillOnes(c.sel, n)
	// Clear tombstoned rows.
	if v.dead != nil {
		for i := 0; i < n; i++ {
			if v.isDead(lo + i) {
				c.sel[i>>6] &^= 1 << (uint(i) & 63)
			}
		}
	}
	if c.colWins == nil {
		c.colWins = make([][]Value, c.width)
	}
	for col := 0; col < c.width; col++ {
		w, err := v.window(col, lo, hi)
		if err != nil {
			c.err = fmt.Errorf("storage: table %s: %w", c.snap.t.name, err)
			return false
		}
		c.colWins[col] = w
	}
	for _, p := range c.preds {
		c.evalPred(p, n)
	}
	c.winLo, c.winN, c.winPos = lo, n, 0
	c.next = hi
	return true
}

func (c *Cursor) evalPred(p Pred, n int) {
	var vals []Value
	if p.Col < c.width {
		vals = c.colWins[p.Col]
	}
	evalPredWindow(p, vals, n, c.sel)
}

// refill materializes the next batch of selected rows.
func (c *Cursor) refill() {
	batch := len(c.hdrs)
	c.n, c.pos = 0, 0
	for c.n < batch {
		if c.winPos >= c.winN {
			if !c.loadWindow() {
				c.done = true
				return
			}
			continue
		}
		i := c.winPos
		c.winPos++
		if c.sel[i>>6]&(1<<(uint(i)&63)) == 0 {
			continue
		}
		dst := c.buf[c.n*c.width : (c.n+1)*c.width]
		for col := 0; col < c.width; col++ {
			if w := c.colWins[col]; w != nil {
				dst[col] = w[i]
			} else {
				dst[col] = Null()
			}
		}
		if c.filter != nil {
			ok, err := c.filter(dst)
			if err != nil {
				c.err = err
				return
			}
			if !ok {
				continue
			}
		}
		c.hdrs[c.n] = dst
		c.n++
	}
}
