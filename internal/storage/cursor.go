package storage

// Cursor reads a table in batches without per-row allocation: each refill
// copies up to batchSize rows' values into one reusable buffer while the
// table's read lock is held, then releases the lock so writers (and crowd
// fill-ins) are blocked only for the duration of a batch, not a whole
// query. This is the executor's scan primitive; the old Scan callback
// holds the lock for the entire iteration.
//
// Consistency: each batch is an atomic snapshot, but the cursor tracks
// its position by row index across lock releases, so the whole scan is
// weaker than the old whole-table Scan (which held the lock throughout):
// rows updated between refills are observed in their new state, and a
// concurrent Delete's in-place compaction shifts indices, which can make
// the scan skip (or re-read) rows near the deletion point. The serving
// workload is append + fill — deletes racing long scans are expected to
// be rare; callers that need a stable view should snapshot (core's gate)
// or avoid concurrent deletes.
//
// The Row returned by Next aliases the cursor's internal buffer and is
// valid only until the following Next call; callers that retain rows
// (sorts, hash builds) must Clone them.
type Cursor struct {
	t     *Table
	width int // column count fixed at cursor creation
	next  int // next table row index to read
	limit int // exclusive upper row index; <0 = whole table
	// filter, when set, is evaluated under the lock during refill; rows
	// failing it are never copied. A filter error stops the scan.
	filter func(Row) (bool, error)

	buf  []Value // batch backing array, reused across refills
	hdrs []Row   // row headers into buf, reused across refills
	n    int     // rows in the current batch
	pos  int     // consumed rows of the current batch
	err  error
	done bool
}

// DefaultBatchSize is the cursor batch size used when 0 is passed.
const DefaultBatchSize = 256

// NewCursor creates a batched cursor over the table's current rows.
func (t *Table) NewCursor(batchSize int) *Cursor {
	return t.NewRangeCursor(0, -1, batchSize)
}

// NewRangeCursor creates a batched cursor over the row-index window
// [lo, hi) — the partitioning primitive for morsel-parallel scans: each
// refill takes the read lock exactly like a whole-table cursor, so
// disjoint ranges can be read by concurrent cursors with no extra
// coordination. hi < 0 means "to the end of the table"; hi beyond the
// current row count is clamped at read time. The same weak-consistency
// caveats as NewCursor apply: the window is an index range, not a row
// set, so concurrent deletes can shift which rows it covers.
func (t *Table) NewRangeCursor(lo, hi, batchSize int) *Cursor {
	if batchSize <= 0 {
		batchSize = DefaultBatchSize
	}
	if lo < 0 {
		lo = 0
	}
	t.mu.RLock()
	width := t.schema.Len()
	t.mu.RUnlock()
	return &Cursor{
		t:     t,
		width: width,
		next:  lo,
		limit: hi,
		buf:   make([]Value, batchSize*width),
		hdrs:  make([]Row, batchSize),
	}
}

// SetFilter installs a predicate evaluated during refill, under the read
// lock, before a row is copied into the batch: non-matching rows cost no
// copy at all. The Row passed to f aliases table storage and must not be
// retained or mutated.
func (c *Cursor) SetFilter(f func(Row) (bool, error)) { c.filter = f }

// Next returns the next matching row, or ok=false at the end of the scan
// (check Err afterwards). The returned Row is valid until the next call.
func (c *Cursor) Next() (Row, bool) {
	for c.pos >= c.n {
		if c.err != nil || c.done {
			return nil, false
		}
		c.refill()
	}
	row := c.hdrs[c.pos]
	c.pos++
	return row, true
}

// Err returns the first filter error encountered, if any.
func (c *Cursor) Err() error { return c.err }

// refill copies the next batch of (matching) rows under one read-lock
// acquisition.
func (c *Cursor) refill() {
	t := c.t
	batch := len(c.hdrs)
	c.n, c.pos = 0, 0

	t.mu.RLock()
	defer t.mu.RUnlock()
	end := len(t.rows)
	if c.limit >= 0 && c.limit < end {
		end = c.limit
	}
	for c.n < batch && c.next < end {
		row := t.rows[c.next]
		c.next++
		if len(row) < c.width {
			// Cannot happen today (columns are only added), but guard
			// against short rows rather than panic mid-scan.
			continue
		}
		if c.filter != nil {
			ok, err := c.filter(row[:c.width])
			if err != nil {
				c.err = err
				return
			}
			if !ok {
				continue
			}
		}
		dst := c.buf[c.n*c.width : (c.n+1)*c.width]
		copy(dst, row[:c.width])
		c.hdrs[c.n] = dst
		c.n++
	}
	if c.next >= end {
		c.done = true
	}
}
