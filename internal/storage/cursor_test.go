package storage

import (
	"fmt"
	"sync"
	"testing"
)

func cursorTable(t *testing.T, n int) *Table {
	t.Helper()
	schema, err := NewSchema(
		Column{Name: "id", Kind: KindInt},
		Column{Name: "name", Kind: KindText},
	)
	if err != nil {
		t.Fatal(err)
	}
	tbl := NewTable("t", schema)
	for i := 0; i < n; i++ {
		if err := tbl.Insert(Int(int64(i)), Text(fmt.Sprintf("row%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	return tbl
}

func TestCursorReadsAllRowsAcrossBatches(t *testing.T) {
	tbl := cursorTable(t, 1000)
	c := tbl.NewCursor(64) // forces many refills
	seen := 0
	for {
		row, ok := c.Next()
		if !ok {
			break
		}
		id, _ := row[0].AsInt()
		if id != int64(seen) {
			t.Fatalf("row %d has id %d", seen, id)
		}
		seen++
	}
	if err := c.Err(); err != nil {
		t.Fatal(err)
	}
	if seen != 1000 {
		t.Fatalf("saw %d rows", seen)
	}
}

func TestCursorFilterSkipsCopies(t *testing.T) {
	tbl := cursorTable(t, 100)
	c := tbl.NewCursor(16)
	c.SetFilter(func(r Row) (bool, error) {
		id, _ := r[0].AsInt()
		return id%10 == 0, nil
	})
	var ids []int64
	for {
		row, ok := c.Next()
		if !ok {
			break
		}
		id, _ := row[0].AsInt()
		ids = append(ids, id)
	}
	if len(ids) != 10 || ids[0] != 0 || ids[9] != 90 {
		t.Fatalf("ids = %v", ids)
	}
}

func TestCursorFilterErrorStopsScan(t *testing.T) {
	tbl := cursorTable(t, 10)
	c := tbl.NewCursor(4)
	boom := fmt.Errorf("boom")
	c.SetFilter(func(r Row) (bool, error) {
		id, _ := r[0].AsInt()
		if id == 5 {
			return false, boom
		}
		return true, nil
	})
	n := 0
	for {
		if _, ok := c.Next(); !ok {
			break
		}
		n++
	}
	if c.Err() != boom {
		t.Fatalf("err = %v", c.Err())
	}
	if n != 5 {
		t.Fatalf("rows before error = %d", n)
	}
}

// The cursor's row is valid only until the next call; the batch buffer is
// reused. This test documents the aliasing contract.
func TestCursorRowAliasing(t *testing.T) {
	tbl := cursorTable(t, 3)
	c := tbl.NewCursor(1)
	r1, _ := c.Next()
	id1, _ := r1[0].AsInt()
	if id1 != 0 {
		t.Fatalf("id = %d", id1)
	}
	_, _ = c.Next()
	// r1 now aliases the second batch (batch size 1): its id changed.
	id1b, _ := r1[0].AsInt()
	if id1b != 1 {
		t.Fatalf("buffer not reused? id = %d", id1b)
	}
}

// Width is fixed at creation: a column added mid-scan does not change the
// shape of rows already being streamed.
func TestCursorFixedWidthUnderConcurrentAddColumn(t *testing.T) {
	tbl := cursorTable(t, 500)
	c := tbl.NewCursor(32)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _ = tbl.AddColumn(Column{Name: "extra", Kind: KindBool})
	}()
	rows := 0
	for {
		row, ok := c.Next()
		if !ok {
			break
		}
		if len(row) != 2 {
			t.Errorf("row width = %d", len(row))
			break
		}
		rows++
	}
	wg.Wait()
	if rows != 500 {
		t.Fatalf("rows = %d", rows)
	}
}

func BenchmarkCursorScan(b *testing.B) {
	schema, _ := NewSchema(Column{Name: "id", Kind: KindInt})
	tbl := NewTable("t", schema)
	for i := 0; i < 100_000; i++ {
		_ = tbl.Insert(Int(int64(i)))
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c := tbl.NewCursor(0)
		for {
			if _, ok := c.Next(); !ok {
				break
			}
		}
	}
}
