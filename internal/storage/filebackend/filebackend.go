// Package filebackend is a storage.Backend that keeps row payloads
// out-of-line: Capture writes each table to its own JSON shard file
// under <dir>/tables/ and the database snapshot records only a
// reference, so the snapshot proper stays small and per-table state is
// inspectable (and replaceable) on disk. Serving still happens from the
// in-memory MVCC catalog — this backend proves the Backend seam is
// real, not that JSON files are a good LSM.
//
// Crash consistency: shard files are generation-numbered
// (tables/<name>.<gen>.json), written to a temp file and renamed, and
// the previous generation is retained until the next Capture — so a
// crash between shard writes and the snapshot commit above the seam
// leaves the old snapshot's references intact.
package filebackend

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"crowddb/internal/storage"
)

func init() {
	storage.RegisterBackend("file", func() storage.Backend { return New() })
}

const tableDir = "tables"

// Backend serves tables from memory and snapshots them to per-table
// shard files.
type Backend struct {
	catalog *storage.Catalog
	dir     string // data directory; "" degrades to inline snapshots
	gen     uint64 // next shard generation to write
}

// New returns an unopened file backend.
func New() *Backend {
	return &Backend{catalog: storage.NewCatalog()}
}

// Name implements storage.Backend.
func (b *Backend) Name() string { return "file" }

// Open implements storage.Backend: roots shard storage under dir and
// resumes the generation counter past any shard already on disk.
func (b *Backend) Open(dir string) error {
	b.dir = dir
	if dir == "" {
		return nil
	}
	td := filepath.Join(dir, tableDir)
	if err := os.MkdirAll(td, 0o755); err != nil {
		return fmt.Errorf("filebackend: %w", err)
	}
	entries, err := os.ReadDir(td)
	if err != nil {
		return fmt.Errorf("filebackend: %w", err)
	}
	var maxGen uint64
	for _, e := range entries {
		if _, gen, ok := splitShardName(e.Name()); ok && gen > maxGen {
			maxGen = gen
		}
	}
	b.gen = maxGen + 1
	return nil
}

// splitShardName parses "<name>.<gen>.json" shard file names.
func splitShardName(file string) (name string, gen uint64, ok bool) {
	rest, found := strings.CutSuffix(file, ".json")
	if !found {
		return "", 0, false
	}
	dot := strings.LastIndexByte(rest, '.')
	if dot <= 0 {
		return "", 0, false
	}
	gen, err := strconv.ParseUint(rest[dot+1:], 10, 64)
	if err != nil {
		return "", 0, false
	}
	return rest[:dot], gen, true
}

// Catalog implements storage.Backend.
func (b *Backend) Catalog() *storage.Catalog { return b.catalog }

// ApplyOp implements storage.Backend.
func (b *Backend) ApplyOp(op storage.Op) error {
	return storage.ApplyCatalogOp(b.catalog, op)
}

// shardState is the on-disk form of one table shard.
type shardState struct {
	Name    string           `json:"name"`
	Columns []storage.Column `json:"columns"`
	Rows    []storage.Row    `json:"rows"`
	Deleted []int            `json:"deleted,omitempty"`
}

// Capture implements storage.Backend: each table's rows go to a fresh
// generation of its shard file; the returned states carry references.
// Without a data directory the capture degrades to inline rows.
func (b *Backend) Capture() ([]storage.TableState, error) {
	states := storage.CaptureCatalog(b.catalog)
	if b.dir == "" {
		return states, nil
	}
	gen := b.gen
	b.gen++
	for i := range states {
		ts := &states[i]
		rel := filepath.Join(tableDir, fmt.Sprintf("%s.%d.json", shardKey(ts.Name), gen))
		if err := writeShard(filepath.Join(b.dir, rel), shardState{
			Name: ts.Name, Columns: ts.Columns, Rows: ts.Rows, Deleted: ts.Deleted,
		}); err != nil {
			return nil, err
		}
		ts.Rows, ts.Deleted = nil, nil
		ts.External = true
		ts.File = rel
	}
	b.dropOldGenerations(gen)
	return states, nil
}

// shardKey makes a table name safe as a file-name stem.
func shardKey(name string) string {
	return strings.Map(func(r rune) rune {
		switch r {
		case '/', '\\', '.', ':':
			return '_'
		}
		return r
	}, strings.ToLower(name))
}

func writeShard(path string, st shardState) error {
	data, err := json.Marshal(st)
	if err != nil {
		return fmt.Errorf("filebackend: encoding shard %s: %w", path, err)
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("filebackend: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("filebackend: %w", err)
	}
	return nil
}

// dropOldGenerations removes shards older than the previous generation.
// Generation cur-1 is kept: the durable snapshot still referencing it
// is replaced only after this Capture's states are committed above the
// seam. Removal failures are ignored — stale shards waste disk, never
// correctness.
func (b *Backend) dropOldGenerations(cur uint64) {
	td := filepath.Join(b.dir, tableDir)
	entries, err := os.ReadDir(td)
	if err != nil {
		return
	}
	for _, e := range entries {
		if _, gen, ok := splitShardName(e.Name()); ok && cur >= 2 && gen < cur-1 {
			_ = os.Remove(filepath.Join(td, e.Name()))
		}
	}
}

// Restore implements storage.Backend: inline states load directly;
// external states are resolved against the data directory.
func (b *Backend) Restore(states []storage.TableState) error {
	for _, ts := range states {
		if ts.External {
			data, err := os.ReadFile(filepath.Join(b.dir, ts.File))
			if err != nil {
				return fmt.Errorf("filebackend: reading shard for table %s: %w", ts.Name, err)
			}
			var sh shardState
			if err := json.Unmarshal(data, &sh); err != nil {
				return fmt.Errorf("filebackend: decoding shard %s: %w", ts.File, err)
			}
			ts.Columns, ts.Rows, ts.Deleted = sh.Columns, sh.Rows, sh.Deleted
		}
		if err := storage.RestoreCatalogTable(b.catalog, ts); err != nil {
			return err
		}
	}
	return nil
}

// Compact implements storage.Backend.
func (b *Backend) Compact(table string, policy storage.CompactionPolicy) (storage.CompactionResult, error) {
	tbl, ok := b.catalog.Get(table)
	if !ok {
		return storage.CompactionResult{}, fmt.Errorf("filebackend: no such table %q", table)
	}
	return tbl.Compact(policy)
}

// RebuildIndexes implements storage.Backend.
func (b *Backend) RebuildIndexes(table string) error {
	tbl, ok := b.catalog.Get(table)
	if !ok {
		return fmt.Errorf("filebackend: no such table %q", table)
	}
	tbl.RebuildIndexes()
	return nil
}

// Close implements storage.Backend.
func (b *Backend) Close() error { return nil }
