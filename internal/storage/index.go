package storage

import (
	"fmt"
	"sort"
)

// ColumnIndex is the maintenance-and-probe contract a secondary index
// (internal/index) implements over one or more columns of a table.
//
// Every method is invoked under the owning table's idxMu — mutators
// under the write lock, in the same critical section that publishes the
// snapshot the update belongs to; probes under the read lock — so
// implementations need no locking of their own and a probe result is
// always consistent with the snapshot pinned alongside it. Row IDs are
// stable physical IDs: Delete removes entries point-wise (Remove), never
// shifting anything.
//
// Keys are value tuples parallel to Columns(); a key with any NULL
// component is not indexed (Add/Remove/Replace skip it, Rebuild skips
// the row).
type ColumnIndex interface {
	// Name is the index's unique (per table, case-insensitive) name.
	Name() string
	// Columns lists the key columns in key order.
	Columns() []string
	// Dirs reports each key column's direction (true = DESC), parallel
	// to Columns. Hash indexes return all-false.
	Dirs() []bool
	// Ordered reports whether Range probes are supported (and whether
	// Range returns IDs in key order, the planner's sort-elision hook).
	Ordered() bool
	// Entries is the number of indexed (fully non-NULL) rows, for
	// introspection and cardinality estimation.
	Entries() int

	// Add indexes row rowID under key.
	Add(rowID int, key []Value)
	// Remove drops rowID's entry under key.
	Remove(rowID int, key []Value)
	// Replace swaps rowID's entry from oldKey to newKey.
	Replace(rowID int, oldKey, newKey []Value)
	// Rebuild reindexes from scratch: cols[k][i] is row i's value for
	// key column k; rows whose bit is set in skip (may be nil) are
	// tombstoned and excluded.
	Rebuild(cols [][]Value, skip []uint64)

	// Lookup returns the row IDs whose key equals key (Value.Equal
	// semantics per component), ascending by row ID. A prefix of the key
	// columns is not enough — len(key) must equal len(Columns()).
	Lookup(key []Value) []int
	// Range returns the row IDs whose FIRST key column falls in the
	// bound window (nil = open side), in index order — first column
	// ascending or descending per Dirs()[0]. Hash indexes return nil.
	Range(lo, hi *Value, loInc, hiInc bool) []int
}

// KeyRanger is the optional index-only-scan hook: ordered indexes
// return, alongside the row IDs, each row's full key tuple — so a query
// whose projection is covered by the key never touches the table.
type KeyRanger interface {
	RangeWithKeys(lo, hi *Value, loInc, hiInc bool) (ids []int, keys [][]Value)
}

// IndexMeta describes one attached index for planning and introspection.
// Column is the first key column (the only one, for single-column
// indexes) — kept alongside Columns for wire compatibility.
type IndexMeta struct {
	Name    string   `json:"name"`
	Column  string   `json:"column"`
	Columns []string `json:"columns,omitempty"`
	Dirs    []bool   `json:"dirs,omitempty"`
	Ordered bool     `json:"ordered"`
	Entries int      `json:"entries"`
}

// Kind renders the index implementation name for humans and JSON.
func (m IndexMeta) Kind() string {
	if m.Ordered {
		return "ordered"
	}
	return "hash"
}

func metaOf(idx ColumnIndex) IndexMeta {
	cols := idx.Columns()
	return IndexMeta{
		Name: idx.Name(), Column: cols[0], Columns: cols, Dirs: idx.Dirs(),
		Ordered: idx.Ordered(), Entries: idx.Entries(),
	}
}

// AttachIndex registers idx with the table and bulk-builds it from the
// current snapshot. The index name must be unique on the table and every
// key column must exist in the schema (a registered-but-not-yet-expanded
// column is rejected by the layer above with a typed error; here it is
// simply unknown).
func (t *Table) AttachIndex(idx ColumnIndex) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	name := normName(idx.Name())
	if name == "" {
		return fmt.Errorf("storage: empty index name")
	}
	if _, dup := t.indexes[name]; dup {
		return fmt.Errorf("storage: table %s already has an index named %q", t.name, idx.Name())
	}
	v := t.snap.Load()
	for _, col := range idx.Columns() {
		if _, ok := v.schema.Lookup(col); !ok {
			return fmt.Errorf("storage: table %s has no column %q to index", t.name, col)
		}
	}
	t.idxMu.Lock()
	defer t.idxMu.Unlock()
	t.rebuildIndex(idx, v)
	if t.indexes == nil {
		t.indexes = map[string]ColumnIndex{}
	}
	t.indexes[name] = idx
	return nil
}

// DetachIndex removes the named index (case-insensitive) from the table.
// The index's in-memory structure is simply dropped — rows are untouched
// and subsequent plans fall back to scans.
func (t *Table) DetachIndex(name string) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	key := normName(name)
	if _, ok := t.indexes[key]; !ok {
		return fmt.Errorf("storage: table %s has no index %q", t.name, name)
	}
	t.idxMu.Lock()
	delete(t.indexes, key)
	t.idxMu.Unlock()
	return nil
}

// indexKeyOf extracts row's key tuple for idx from version v. ok is
// false — the row is not indexed — when a key column is missing from the
// schema or any component is NULL.
func indexKeyOf(idx ColumnIndex, v *version, row int) ([]Value, bool) {
	cols := idx.Columns()
	key := make([]Value, len(cols))
	for k, name := range cols {
		ci, ok := v.schema.Lookup(name)
		if !ok {
			return nil, false
		}
		val := v.value(row, ci)
		if val.IsNull() {
			return nil, false
		}
		key[k] = val
	}
	return key, true
}

// columnValues materializes the full physical column col of version v.
func columnValues(v *version, col int) []Value {
	vals := make([]Value, v.nrows)
	for i := 0; i < v.nrows; i++ {
		vals[i] = v.value(i, col)
	}
	return vals
}

// rebuildIndex bulk-loads idx from version v. Caller holds t.idxMu
// (write) or has exclusive access to idx.
func (t *Table) rebuildIndex(idx ColumnIndex, v *version) {
	names := idx.Columns()
	cols := make([][]Value, len(names))
	for k, name := range names {
		ci, ok := v.schema.Lookup(name)
		if !ok {
			return // vanished column: leave the index empty rather than lie
		}
		cols[k] = columnValues(v, ci)
	}
	idx.Rebuild(cols, v.dead)
}

// indexesOn returns the indexes having the named column anywhere in
// their key. Caller holds t.idxMu or t.mu.
func (t *Table) indexesOn(col string) []ColumnIndex {
	var out []ColumnIndex
	for _, idx := range t.indexes {
		for _, c := range idx.Columns() {
			if normName(c) == normName(col) {
				out = append(out, idx)
				break
			}
		}
	}
	return out
}

// IndexMetas returns the attached indexes' metadata, sorted by name.
func (t *Table) IndexMetas() []IndexMeta {
	t.idxMu.RLock()
	defer t.idxMu.RUnlock()
	out := make([]IndexMeta, 0, len(t.indexes))
	for _, idx := range t.indexes {
		out = append(out, metaOf(idx))
	}
	sort.Slice(out, func(i, j int) bool { return normName(out[i].Name) < normName(out[j].Name) })
	return out
}

// IndexOn returns the metadata of an index usable for probes on the
// named column: for equality (wantOrdered=false) a single-column index
// of any kind, preferring hash; for ranges/order (wantOrdered=true) an
// ordered index whose FIRST key column matches (range bounds apply to
// the leading column). Ties break by name for plan stability.
func (t *Table) IndexOn(column string, wantOrdered bool) (IndexMeta, bool) {
	t.idxMu.RLock()
	defer t.idxMu.RUnlock()
	var best ColumnIndex
	for _, idx := range t.indexes {
		cols := idx.Columns()
		if normName(cols[0]) != normName(column) {
			continue
		}
		if wantOrdered {
			if !idx.Ordered() {
				continue
			}
			if best == nil || normName(idx.Name()) < normName(best.Name()) {
				best = idx
			}
			continue
		}
		if len(cols) != 1 {
			continue // equality on one column can't use a composite key
		}
		switch {
		case best == nil:
			best = idx
		case best.Ordered() && !idx.Ordered():
			best = idx
		case best.Ordered() == idx.Ordered() && normName(idx.Name()) < normName(best.Name()):
			best = idx
		}
	}
	if best == nil {
		return IndexMeta{}, false
	}
	return metaOf(best), true
}

// IndexProbe selects index entries for a cursor: Key for a (possibly
// composite) equality lookup, Point for the legacy single-column form,
// otherwise the (possibly half-open) Lo/Hi range on the first key
// column. Reverse flips the result to the opposite of index order — the
// planner's hook for serving ORDER BY ... DESC from an ASC index (and
// vice versa) without a Sort.
type IndexProbe struct {
	Key     []Value
	Point   *Value
	Lo, Hi  *Value
	LoInc   bool
	HiInc   bool
	Reverse bool
}

// resolve runs the probe against idx. Caller holds t.idxMu (read).
//
// Reverse must match a stable DESC sort exactly: key groups in reverse
// order, table (row-ID) order preserved WITHIN each group of equal keys.
// A whole-slice reverse would flip tie order too, making a DESC
// index-order elision observably differ from the Sort it replaced. Range
// probes reverse group-wise via the index's keys; point probes are a
// single key group, where reversing would only scramble ties, so Reverse
// is a no-op.
func (p IndexProbe) resolve(idx ColumnIndex) []int {
	switch {
	case p.Key != nil:
		return idx.Lookup(p.Key)
	case p.Point != nil:
		return idx.Lookup([]Value{*p.Point})
	}
	if p.Reverse {
		if kr, ok := idx.(KeyRanger); ok {
			ids, keys := kr.RangeWithKeys(p.Lo, p.Hi, p.LoInc, p.HiInc)
			ids, _ = reverseKeyGroups(ids, keys)
			return ids
		}
		// No key access: whole-slice reverse (tie order flips; ordered
		// indexes all implement KeyRanger, so this is a fallback for
		// exotic external implementations only).
		ids := idx.Range(p.Lo, p.Hi, p.LoInc, p.HiInc)
		rev := make([]int, len(ids))
		for i, id := range ids {
			rev[len(ids)-1-i] = id
		}
		return rev
	}
	return idx.Range(p.Lo, p.Hi, p.LoInc, p.HiInc)
}

// reverseKeyGroups flips the order of equal-key runs while preserving
// order within each run. ids and keys are parallel slices in index
// (ascending) order; the result is descending key order with ties still
// in table order — exactly a stable DESC sort.
func reverseKeyGroups(ids []int, keys [][]Value) ([]int, [][]Value) {
	outIDs := make([]int, 0, len(ids))
	outKeys := make([][]Value, 0, len(keys))
	for end := len(ids); end > 0; {
		start := end - 1
		for start > 0 && keysEqual(keys[start-1], keys[end-1]) {
			start--
		}
		outIDs = append(outIDs, ids[start:end]...)
		outKeys = append(outKeys, keys[start:end]...)
		end = start
	}
	return outIDs, outKeys
}

func keysEqual(a, b []Value) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			return false
		}
	}
	return true
}

func (p IndexProbe) isPoint() bool { return p.Key != nil || p.Point != nil }

// lookupIndex fetches the named index and validates the probe shape.
// Caller holds t.idxMu (read).
func (t *Table) lookupIndex(indexName string, probe IndexProbe) (ColumnIndex, error) {
	idx, ok := t.indexes[normName(indexName)]
	if !ok {
		return nil, fmt.Errorf("storage: table %s has no index %q", t.name, indexName)
	}
	if !probe.isPoint() && !idx.Ordered() {
		return nil, fmt.Errorf("storage: index %q on %s is not ordered; range probes need an ordered index", indexName, t.name)
	}
	return idx, nil
}

// PinIndexProbe resolves probe against the named index and pins the
// matching snapshot in one critical section — the (snapshot, IDs) pair
// is mutually consistent because commits publish both sides under the
// same lock. This is the partitioning primitive for morsel-parallel
// index access: the caller splits the ID list into disjoint chunks and
// reads each through NewIndexCursorAt against the returned snapshot,
// releasing it once when all workers are done.
func (t *Table) PinIndexProbe(indexName string, probe IndexProbe) (*Snap, []int, error) {
	t.idxMu.RLock()
	defer t.idxMu.RUnlock()
	idx, err := t.lookupIndex(indexName, probe)
	if err != nil {
		return nil, nil, err
	}
	ids := probe.resolve(idx)
	return t.pinLocked(), ids, nil
}

// IndexOnlyProbe resolves probe and returns, for each matching row, the
// index's full key tuple — without ever touching table data. For point
// probes keys is nil: every row's key equals the probe key, which the
// caller already holds. Range probes require the index to implement
// KeyRanger (ordered indexes do).
func (t *Table) IndexOnlyProbe(indexName string, probe IndexProbe) (ids []int, keys [][]Value, err error) {
	t.idxMu.RLock()
	defer t.idxMu.RUnlock()
	idx, err := t.lookupIndex(indexName, probe)
	if err != nil {
		return nil, nil, err
	}
	if probe.isPoint() {
		return probe.resolve(idx), nil, nil
	}
	kr, ok := idx.(KeyRanger)
	if !ok {
		return nil, nil, fmt.Errorf("storage: index %q on %s cannot serve index-only scans", indexName, t.name)
	}
	ids, keys = kr.RangeWithKeys(probe.Lo, probe.Hi, probe.LoInc, probe.HiInc)
	if probe.Reverse {
		ids, keys = reverseKeyGroups(ids, keys)
	}
	return ids, keys, nil
}

// IndexCursor streams the rows an index probe selected, in probe order
// (ascending row ID for point lookups, key order for ranges), reading a
// snapshot pinned at creation with zero locks per batch. The IDs and the
// snapshot are captured in one critical section, so every ID resolves to
// a live row carrying exactly the key the index reported — rows updated
// or deleted after creation are invisible, closing the old
// concurrent-delete and updated-out-of-predicate caveats.
type IndexCursor struct {
	snap  *Snap
	v     *version
	width int
	owns  bool

	ids  []int
	next int // next position in ids

	filter func(Row) (bool, error)

	buf  []Value
	hdrs []Row
	n    int
	pos  int
	err  error
	done bool
}

// NewIndexCursor creates a batched cursor over the rows the named index
// selects for probe. The index must exist; a range probe requires an
// ordered index. The cursor owns its snapshot pin.
func (t *Table) NewIndexCursor(indexName string, probe IndexProbe, batchSize int) (*IndexCursor, error) {
	snap, ids, err := t.PinIndexProbe(indexName, probe)
	if err != nil {
		return nil, err
	}
	c := NewIndexCursorAt(snap, ids, batchSize)
	c.owns = true
	return c, nil
}

// NewIndexCursorAt creates a batched cursor over a pre-resolved slice of
// row IDs (from PinIndexProbe) against the snapshot they were resolved
// with. The caller keeps ownership of snap.
func NewIndexCursorAt(snap *Snap, ids []int, batchSize int) *IndexCursor {
	if batchSize <= 0 {
		batchSize = DefaultBatchSize
	}
	v := snap.v
	width := v.schema.Len()
	return &IndexCursor{
		snap: snap, v: v, width: width, ids: ids,
		buf:  make([]Value, batchSize*width),
		hdrs: make([]Row, batchSize),
	}
}

// SetFilter installs a residual predicate evaluated during refill,
// before a row is surfaced (same contract as Cursor.SetFilter).
func (c *IndexCursor) SetFilter(f func(Row) (bool, error)) { c.filter = f }

// Next returns the next matching row, or ok=false at the end (check
// Err). The returned Row is valid until the next call.
func (c *IndexCursor) Next() (Row, bool) {
	for c.pos >= c.n {
		if c.err != nil || c.done {
			c.Close()
			return nil, false
		}
		c.refill()
	}
	row := c.hdrs[c.pos]
	c.pos++
	return row, true
}

// Err returns the first filter error encountered, if any.
func (c *IndexCursor) Err() error { return c.err }

// Close releases the cursor's snapshot pin (if it owns one). Idempotent;
// called automatically at scan end.
func (c *IndexCursor) Close() {
	if c.owns {
		c.snap.Release()
	}
}

// refill materializes the next batch of rows from the pinned snapshot.
func (c *IndexCursor) refill() {
	batch := len(c.hdrs)
	c.n, c.pos = 0, 0
	v := c.v
	for c.n < batch && c.next < len(c.ids) {
		id := c.ids[c.next]
		c.next++
		if id < 0 || id >= v.nrows || v.isDead(id) {
			continue // defensive; a consistent (snapshot, IDs) pair never hits this
		}
		dst := c.buf[c.n*c.width : (c.n+1)*c.width]
		v.materializeRow(id, dst, c.width)
		if c.filter != nil {
			ok, err := c.filter(dst)
			if err != nil {
				c.err = err
				return
			}
			if !ok {
				continue
			}
		}
		c.hdrs[c.n] = dst
		c.n++
	}
	if c.next >= len(c.ids) {
		c.done = true
	}
}
