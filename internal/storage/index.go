package storage

import (
	"fmt"
	"sort"
)

// ColumnIndex is the maintenance-and-probe contract a secondary index
// (internal/index) implements over one column of a table.
//
// Every method is invoked under the owning table's mutex — mutators under
// the write lock while a mutation is applied, probes under the read lock
// while an index cursor refills a batch — so implementations need no
// locking of their own. Row IDs are the table's current row positions;
// when Delete compacts positions the table rebuilds every index rather
// than patching them.
type ColumnIndex interface {
	// Name is the index's unique (per table, case-insensitive) name.
	Name() string
	// Column is the indexed column.
	Column() string
	// Ordered reports whether Range probes are supported (and whether
	// Range returns IDs in key order, the planner's sort-elision hook).
	Ordered() bool
	// Entries is the number of indexed (non-NULL) rows, for
	// introspection.
	Entries() int

	// Add indexes row rowID's value v (NULLs are skipped).
	Add(rowID int, v Value)
	// Replace swaps rowID's entry from oldV to newV.
	Replace(rowID int, oldV, newV Value)
	// Rebuild reindexes from scratch; vals[i] is row i's value.
	Rebuild(vals []Value)

	// Lookup returns the row IDs whose value equals v (Value.Equal
	// semantics), ascending by row ID.
	Lookup(v Value) []int
	// Range returns the row IDs in the bound window (nil = open side),
	// in key order. Hash indexes return nil.
	Range(lo, hi *Value, loInc, hiInc bool) []int
}

// IndexMeta describes one attached index for planning and introspection.
type IndexMeta struct {
	Name    string `json:"name"`
	Column  string `json:"column"`
	Ordered bool   `json:"ordered"`
	Entries int    `json:"entries"`
}

// Kind renders the index implementation name for humans and JSON.
func (m IndexMeta) Kind() string {
	if m.Ordered {
		return "ordered"
	}
	return "hash"
}

// AttachIndex registers idx with the table and bulk-builds it from the
// current rows under the write lock. The index name must be unique on the
// table and the column must exist in the schema (a registered-but-not-yet
// -expanded column is rejected by the layer above with a typed error;
// here it is simply unknown).
func (t *Table) AttachIndex(idx ColumnIndex) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	name := normName(idx.Name())
	if name == "" {
		return fmt.Errorf("storage: empty index name")
	}
	if _, dup := t.indexes[name]; dup {
		return fmt.Errorf("storage: table %s already has an index named %q", t.name, idx.Name())
	}
	col, ok := t.schema.Lookup(idx.Column())
	if !ok {
		return fmt.Errorf("storage: table %s has no column %q to index", t.name, idx.Column())
	}
	idx.Rebuild(t.columnValues(col))
	if t.indexes == nil {
		t.indexes = map[string]ColumnIndex{}
	}
	t.indexes[name] = idx
	return nil
}

// DetachIndex removes the named index (case-insensitive) from the table.
// The index's in-memory structure is simply dropped — rows are untouched
// and subsequent plans fall back to scans.
func (t *Table) DetachIndex(name string) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	key := normName(name)
	if _, ok := t.indexes[key]; !ok {
		return fmt.Errorf("storage: table %s has no index %q", t.name, name)
	}
	delete(t.indexes, key)
	return nil
}

// columnValues snapshots column col of every row. Caller holds t.mu.
func (t *Table) columnValues(col int) []Value {
	vals := make([]Value, len(t.rows))
	for i, r := range t.rows {
		vals[i] = r[col]
	}
	return vals
}

// indexesOn returns the indexes over the named column. Caller holds t.mu.
func (t *Table) indexesOn(col string) []ColumnIndex {
	var out []ColumnIndex
	for _, idx := range t.indexes {
		if normName(idx.Column()) == normName(col) {
			out = append(out, idx)
		}
	}
	return out
}

// rebuildIndexes reindexes every attached index from the current rows
// (the Delete-compaction path: positions shifted, patching is not worth
// the complexity for a rare operation). Caller holds t.mu.
func (t *Table) rebuildIndexes() {
	for _, idx := range t.indexes {
		if col, ok := t.schema.Lookup(idx.Column()); ok {
			idx.Rebuild(t.columnValues(col))
		}
	}
}

// IndexMetas returns the attached indexes' metadata, sorted by name.
func (t *Table) IndexMetas() []IndexMeta {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]IndexMeta, 0, len(t.indexes))
	for _, idx := range t.indexes {
		out = append(out, IndexMeta{
			Name: idx.Name(), Column: idx.Column(),
			Ordered: idx.Ordered(), Entries: idx.Entries(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return normName(out[i].Name) < normName(out[j].Name) })
	return out
}

// IndexOn returns the metadata of an index over the named column,
// preferring a hash index when wantOrdered is false (equality probes) and
// requiring an ordered one when true (range probes / index order).
func (t *Table) IndexOn(column string, wantOrdered bool) (IndexMeta, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var best ColumnIndex
	for _, idx := range t.indexes {
		if normName(idx.Column()) != normName(column) {
			continue
		}
		if wantOrdered {
			if !idx.Ordered() {
				continue
			}
			if best == nil || normName(idx.Name()) < normName(best.Name()) {
				best = idx
			}
			continue
		}
		// Equality: any index answers; prefer hash, tie-break by name for
		// plan stability.
		switch {
		case best == nil:
			best = idx
		case best.Ordered() && !idx.Ordered():
			best = idx
		case best.Ordered() == idx.Ordered() && normName(idx.Name()) < normName(best.Name()):
			best = idx
		}
	}
	if best == nil {
		return IndexMeta{}, false
	}
	return IndexMeta{Name: best.Name(), Column: best.Column(), Ordered: best.Ordered(), Entries: best.Entries()}, true
}

// IndexProbe selects index entries for a cursor: Point for an equality
// lookup, otherwise the (possibly half-open) Lo/Hi range.
type IndexProbe struct {
	Point  *Value
	Lo, Hi *Value
	LoInc  bool
	HiInc  bool
}

// IndexCursor streams the rows an index probe selects, in probe order
// (ascending row ID for point lookups, key order for ranges), batching
// row copies under per-batch read locks exactly like Cursor. The
// matching row IDs are resolved once, under the first batch's lock, and
// every row is re-checked against the probe at copy time (matches, see
// refill), so a row updated out of the predicate between batches is
// dropped — the same guarantee the scan cursor's filter gives. The
// concurrent-delete caveat of Cursor still applies: IDs compacted away
// after resolution are skipped or may alias a shifted row.
type IndexCursor struct {
	t     *Table
	idx   ColumnIndex
	probe IndexProbe
	col   int // schema position of the indexed column
	width int

	ids      []int
	resolved bool
	next     int // next position in ids

	filter func(Row) (bool, error)

	buf  []Value
	hdrs []Row
	n    int
	pos  int
	err  error
	done bool
}

// NewIndexCursor creates a batched cursor over the rows the named index
// selects for probe. The index must exist; a range probe requires an
// ordered index.
func (t *Table) NewIndexCursor(indexName string, probe IndexProbe, batchSize int) (*IndexCursor, error) {
	if batchSize <= 0 {
		batchSize = DefaultBatchSize
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	idx, ok := t.indexes[normName(indexName)]
	if !ok {
		return nil, fmt.Errorf("storage: table %s has no index %q", t.name, indexName)
	}
	if probe.Point == nil && !idx.Ordered() {
		return nil, fmt.Errorf("storage: index %q on %s is not ordered; range probes need an ordered index", indexName, t.name)
	}
	col, ok := t.schema.Lookup(idx.Column())
	if !ok {
		return nil, fmt.Errorf("storage: indexed column %q vanished from %s", idx.Column(), t.name)
	}
	width := t.schema.Len()
	return &IndexCursor{
		t: t, idx: idx, probe: probe, col: col, width: width,
		buf:  make([]Value, batchSize*width),
		hdrs: make([]Row, batchSize),
	}, nil
}

// IndexProbeIDs resolves a probe to its matching row IDs under one read
// lock — the partitioning primitive for morsel-parallel index access: the
// caller splits the ID list into disjoint chunks and reads each through
// NewIndexCursorForIDs. The IDs carry the same weak-consistency caveats
// as IndexCursor's internal resolution (rows can move out of the
// predicate or be compacted away afterwards; the per-row matches() check
// in the cursor re-validates at copy time).
func (t *Table) IndexProbeIDs(indexName string, probe IndexProbe) ([]int, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	idx, ok := t.indexes[normName(indexName)]
	if !ok {
		return nil, fmt.Errorf("storage: table %s has no index %q", t.name, indexName)
	}
	if probe.Point == nil && !idx.Ordered() {
		return nil, fmt.Errorf("storage: index %q on %s is not ordered; range probes need an ordered index", indexName, t.name)
	}
	if probe.Point != nil {
		return idx.Lookup(*probe.Point), nil
	}
	return idx.Range(probe.Lo, probe.Hi, probe.LoInc, probe.HiInc), nil
}

// NewIndexCursorForIDs creates a batched cursor over a pre-resolved slice
// of row IDs (from IndexProbeIDs). The probe is still carried so every
// row is re-checked against it at copy time, exactly like the
// self-resolving cursor.
func (t *Table) NewIndexCursorForIDs(indexName string, probe IndexProbe, ids []int, batchSize int) (*IndexCursor, error) {
	c, err := t.NewIndexCursor(indexName, probe, batchSize)
	if err != nil {
		return nil, err
	}
	c.ids, c.resolved = ids, true
	return c, nil
}

// SetFilter installs a residual predicate evaluated during refill, under
// the read lock, before a row is copied out (same contract as
// Cursor.SetFilter).
func (c *IndexCursor) SetFilter(f func(Row) (bool, error)) { c.filter = f }

// Next returns the next matching row, or ok=false at the end (check Err).
// The returned Row is valid until the next call.
func (c *IndexCursor) Next() (Row, bool) {
	for c.pos >= c.n {
		if c.err != nil || c.done {
			return nil, false
		}
		c.refill()
	}
	row := c.hdrs[c.pos]
	c.pos++
	return row, true
}

// Err returns the first filter error encountered, if any.
func (c *IndexCursor) Err() error { return c.err }

// matches re-evaluates the probe against a row's current key value. The
// IDs were resolved at the first refill; a concurrent Set can move a row
// out of the predicate between batches, and without this check the
// cursor would return a row violating the query's own WHERE clause —
// something the scan path (filter under the lock at copy time) can never
// do. Point probes use Value.Equal (the `=` semantics the planner
// consumed); range probes use Value.Compare, treating an incomparable
// value as a non-match. NULL keys never match.
func (c *IndexCursor) matches(v Value) bool {
	if v.IsNull() {
		return false
	}
	if c.probe.Point != nil {
		return v.Equal(*c.probe.Point)
	}
	if c.probe.Lo != nil {
		cmp, err := v.Compare(*c.probe.Lo)
		if err != nil || cmp < 0 || (cmp == 0 && !c.probe.LoInc) {
			return false
		}
	}
	if c.probe.Hi != nil {
		cmp, err := v.Compare(*c.probe.Hi)
		if err != nil || cmp > 0 || (cmp == 0 && !c.probe.HiInc) {
			return false
		}
	}
	return true
}

// refill resolves the probe (first call) and copies the next batch of
// matching rows under one read-lock acquisition.
func (c *IndexCursor) refill() {
	t := c.t
	batch := len(c.hdrs)
	c.n, c.pos = 0, 0

	t.mu.RLock()
	defer t.mu.RUnlock()
	if !c.resolved {
		if c.probe.Point != nil {
			c.ids = c.idx.Lookup(*c.probe.Point)
		} else {
			c.ids = c.idx.Range(c.probe.Lo, c.probe.Hi, c.probe.LoInc, c.probe.HiInc)
		}
		c.resolved = true
	}
	for c.n < batch && c.next < len(c.ids) {
		id := c.ids[c.next]
		c.next++
		if id < 0 || id >= len(t.rows) {
			continue // compacted away since resolution
		}
		row := t.rows[id]
		if len(row) < c.width {
			continue
		}
		if !c.matches(row[c.col]) {
			continue
		}
		if c.filter != nil {
			ok, err := c.filter(row[:c.width])
			if err != nil {
				c.err = err
				return
			}
			if !ok {
				continue
			}
		}
		dst := c.buf[c.n*c.width : (c.n+1)*c.width]
		copy(dst, row[:c.width])
		c.hdrs[c.n] = dst
		c.n++
	}
	if c.next >= len(c.ids) {
		c.done = true
	}
}
