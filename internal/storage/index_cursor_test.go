package storage

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

// fakeIndex is a minimal ColumnIndex capturing maintenance calls, for
// testing the table-side hooks without importing internal/index (which
// would cycle).
type fakeIndex struct {
	name  string
	cols  []string
	byKey map[string][]int
}

func newFakeIndex(name string, cols ...string) *fakeIndex {
	return &fakeIndex{name: name, cols: cols, byKey: map[string][]int{}}
}

func (f *fakeIndex) Name() string      { return f.name }
func (f *fakeIndex) Columns() []string { return f.cols }
func (f *fakeIndex) Dirs() []bool      { return make([]bool, len(f.cols)) }
func (f *fakeIndex) Ordered() bool     { return false }
func (f *fakeIndex) Entries() int {
	n := 0
	for _, ids := range f.byKey {
		n += len(ids)
	}
	return n
}

func (f *fakeIndex) keyStr(key []Value) (string, bool) {
	parts := make([]string, len(key))
	for i, v := range key {
		if v.IsNull() {
			return "", false
		}
		parts[i] = v.String()
	}
	return strings.Join(parts, "\x1f"), true
}

func (f *fakeIndex) Add(rowID int, key []Value) {
	k, ok := f.keyStr(key)
	if !ok {
		return
	}
	f.byKey[k] = append(f.byKey[k], rowID)
}

func (f *fakeIndex) Remove(rowID int, key []Value) {
	k, ok := f.keyStr(key)
	if !ok {
		return
	}
	ids := f.byKey[k]
	for i, id := range ids {
		if id == rowID {
			f.byKey[k] = append(ids[:i], ids[i+1:]...)
			return
		}
	}
}

func (f *fakeIndex) Replace(rowID int, oldKey, newKey []Value) {
	f.Remove(rowID, oldKey)
	f.Add(rowID, newKey)
}

func (f *fakeIndex) Rebuild(cols [][]Value, skip []uint64) {
	f.byKey = map[string][]int{}
	if len(cols) == 0 {
		return
	}
	for i := 0; i < len(cols[0]); i++ {
		if w := i >> 6; w < len(skip) && skip[w]&(1<<(uint(i)&63)) != 0 {
			continue
		}
		key := make([]Value, len(cols))
		for c := range cols {
			key[c] = cols[c][i]
		}
		f.Add(i, key)
	}
}

func (f *fakeIndex) Lookup(key []Value) []int {
	k, ok := f.keyStr(key)
	if !ok {
		return nil
	}
	return append([]int(nil), f.byKey[k]...)
}

func (f *fakeIndex) Range(lo, hi *Value, loInc, hiInc bool) []int { return nil }

func indexedTable(t *testing.T, rows int) *Table {
	t.Helper()
	schema, err := NewSchema(Column{Name: "k", Kind: KindInt}, Column{Name: "v", Kind: KindText})
	if err != nil {
		t.Fatal(err)
	}
	tbl := NewTable("t", schema)
	for i := 0; i < rows; i++ {
		if err := tbl.Insert(Int(int64(i%10)), Text(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := tbl.AttachIndex(newFakeIndex("ik", "k")); err != nil {
		t.Fatal(err)
	}
	return tbl
}

func TestAttachIndexBulkLoadsAndMaintains(t *testing.T) {
	tbl := indexedTable(t, 100)
	meta, ok := tbl.IndexOn("K", false) // case-insensitive
	if !ok || meta.Entries != 100 {
		t.Fatalf("IndexOn = %+v %v", meta, ok)
	}
	if err := tbl.Insert(Int(3), Text("extra")); err != nil {
		t.Fatal(err)
	}
	point := Int(3)
	cur, err := tbl.NewIndexCursor("ik", IndexProbe{Point: &point}, 4)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for {
		row, ok := cur.Next()
		if !ok {
			break
		}
		if got, _ := row[0].AsInt(); got != 3 {
			t.Fatalf("row k = %d", got)
		}
		n++
	}
	if cur.Err() != nil {
		t.Fatal(cur.Err())
	}
	if n != 11 {
		t.Fatalf("k=3 rows = %d, want 11", n)
	}
}

func TestIndexCursorResidualFilter(t *testing.T) {
	tbl := indexedTable(t, 100)
	point := Int(7)
	cur, err := tbl.NewIndexCursor("ik", IndexProbe{Point: &point}, 0)
	if err != nil {
		t.Fatal(err)
	}
	cur.SetFilter(func(r Row) (bool, error) {
		s, _ := r[1].AsText()
		return s == "v7", nil
	})
	n := 0
	for {
		if _, ok := cur.Next(); !ok {
			break
		}
		n++
	}
	if n != 1 {
		t.Fatalf("filtered rows = %d, want 1", n)
	}
}

func TestRangeProbeOnUnorderedIndexRejected(t *testing.T) {
	tbl := indexedTable(t, 10)
	lo := Int(1)
	if _, err := tbl.NewIndexCursor("ik", IndexProbe{Lo: &lo}, 0); err == nil {
		t.Fatal("range probe on a hash-like index must be rejected")
	}
	if _, err := tbl.NewIndexCursor("ghost", IndexProbe{Point: &lo}, 0); err == nil {
		t.Fatal("unknown index must be rejected")
	}
}

func TestDeleteRemovesIndexEntries(t *testing.T) {
	tbl := indexedTable(t, 50)
	// Delete all k=0 rows (physical IDs 0,10,20,30,40) — entries are
	// removed point-wise; the surviving IDs don't move.
	tbl.Delete([]int{0, 10, 20, 30, 40})
	point := Int(0)
	if cur, err := tbl.NewIndexCursor("ik", IndexProbe{Point: &point}, 0); err != nil {
		t.Fatal(err)
	} else if row, ok := cur.Next(); ok {
		t.Fatalf("k=0 still probed a row after delete: %v", row)
	}
	point = Int(9)
	cur, err := tbl.NewIndexCursor("ik", IndexProbe{Point: &point}, 0)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for {
		row, ok := cur.Next()
		if !ok {
			break
		}
		if got, _ := row[0].AsInt(); got != 9 {
			t.Fatalf("row k = %d after delete", got)
		}
		n++
	}
	if n != 5 {
		t.Fatalf("k=9 rows after delete = %d, want 5", n)
	}
}

// TestIndexCursorSnapshotStability: the cursor captures the snapshot and
// the matching IDs in one critical section at creation, so rows updated
// out of the predicate afterwards are still returned WITH THEIR AS-OF-OPEN
// VALUES — repeatable reads, the MVCC upgrade over the old re-check-at-
// copy-time behavior.
func TestIndexCursorSnapshotStability(t *testing.T) {
	tbl := indexedTable(t, 100) // ten rows per key 0..9
	point := Int(6)
	cur, err := tbl.NewIndexCursor("ik", IndexProbe{Point: &point}, 2)
	if err != nil {
		t.Fatal(err)
	}
	got := 0
	for i := 0; i < 2; i++ { // drain the first batch only
		row, ok := cur.Next()
		if !ok {
			t.Fatalf("batch 1 ended after %d rows", got)
		}
		if k, _ := row[0].AsInt(); k != 6 {
			t.Fatalf("row k = %d", k)
		}
		got++
	}
	// Move every k=6 row but one out of the predicate, and delete the
	// holdout, while the cursor is parked between batches.
	for i := 0; i < 100; i++ {
		if i == 26 {
			continue
		}
		if v, err := tbl.Value(i, 0); err == nil {
			if k, _ := v.AsInt(); k == 6 {
				if err := tbl.Set(i, 0, Int(99)); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	tbl.Delete([]int{26}) // the remaining untouched k=6 row
	for {
		row, ok := cur.Next()
		if !ok {
			break
		}
		if k, _ := row[0].AsInt(); k != 6 {
			t.Fatalf("cursor returned k=%d; the pinned snapshot must show as-of-open values", k)
		}
		got++
	}
	if cur.Err() != nil {
		t.Fatal(cur.Err())
	}
	// All 10 rows matched at open; every one must be emitted with its
	// as-of-open key, updates and deletes notwithstanding.
	if got != 10 {
		t.Fatalf("emitted %d rows, want 10 (snapshot isolation)", got)
	}
	// A cursor opened now sees the post-mutation state: no k=6 rows left.
	cur2, err := tbl.NewIndexCursor("ik", IndexProbe{Point: &point}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if row, ok := cur2.Next(); ok {
		t.Fatalf("fresh cursor still sees k=6 row %v", row)
	}
}

// TestIndexProbesUnderConcurrentInserts hammers point probes while rows
// land, for the race detector: every probe must see a consistent batch.
func TestIndexProbesUnderConcurrentInserts(t *testing.T) {
	tbl := indexedTable(t, 100)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 100; i < 2000; i++ {
			if err := tbl.Insert(Int(int64(i%10)), Text("w")); err != nil {
				t.Error(err)
				return
			}
		}
		close(stop)
	}()
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				point := Int(4)
				cur, err := tbl.NewIndexCursor("ik", IndexProbe{Point: &point}, 8)
				if err != nil {
					t.Error(err)
					return
				}
				for {
					row, ok := cur.Next()
					if !ok {
						break
					}
					if got, _ := row[0].AsInt(); got != 4 {
						t.Errorf("probe saw k=%d", got)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}
