package storage

import (
	"fmt"
	"sync"
	"testing"
)

// fakeIndex is a minimal ColumnIndex capturing maintenance calls, for
// testing the table-side hooks without importing internal/index (which
// would cycle).
type fakeIndex struct {
	name, col string
	byVal     map[string][]int
}

func newFakeIndex(name, col string) *fakeIndex {
	return &fakeIndex{name: name, col: col, byVal: map[string][]int{}}
}

func (f *fakeIndex) Name() string   { return f.name }
func (f *fakeIndex) Column() string { return f.col }
func (f *fakeIndex) Ordered() bool  { return false }
func (f *fakeIndex) Entries() int {
	n := 0
	for _, ids := range f.byVal {
		n += len(ids)
	}
	return n
}

func (f *fakeIndex) Add(rowID int, v Value) {
	if v.IsNull() {
		return
	}
	f.byVal[v.String()] = append(f.byVal[v.String()], rowID)
}

func (f *fakeIndex) Replace(rowID int, oldV, newV Value) {
	if !oldV.IsNull() {
		ids := f.byVal[oldV.String()]
		for i, id := range ids {
			if id == rowID {
				f.byVal[oldV.String()] = append(ids[:i], ids[i+1:]...)
				break
			}
		}
	}
	f.Add(rowID, newV)
}

func (f *fakeIndex) Rebuild(vals []Value) {
	f.byVal = map[string][]int{}
	for i, v := range vals {
		f.Add(i, v)
	}
}

func (f *fakeIndex) Lookup(v Value) []int {
	return append([]int(nil), f.byVal[v.String()]...)
}

func (f *fakeIndex) Range(lo, hi *Value, loInc, hiInc bool) []int { return nil }

func indexedTable(t *testing.T, rows int) *Table {
	t.Helper()
	schema, err := NewSchema(Column{Name: "k", Kind: KindInt}, Column{Name: "v", Kind: KindText})
	if err != nil {
		t.Fatal(err)
	}
	tbl := NewTable("t", schema)
	for i := 0; i < rows; i++ {
		if err := tbl.Insert(Int(int64(i%10)), Text(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := tbl.AttachIndex(newFakeIndex("ik", "k")); err != nil {
		t.Fatal(err)
	}
	return tbl
}

func TestAttachIndexBulkLoadsAndMaintains(t *testing.T) {
	tbl := indexedTable(t, 100)
	meta, ok := tbl.IndexOn("K", false) // case-insensitive
	if !ok || meta.Entries != 100 {
		t.Fatalf("IndexOn = %+v %v", meta, ok)
	}
	if err := tbl.Insert(Int(3), Text("extra")); err != nil {
		t.Fatal(err)
	}
	point := Int(3)
	cur, err := tbl.NewIndexCursor("ik", IndexProbe{Point: &point}, 4)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for {
		row, ok := cur.Next()
		if !ok {
			break
		}
		if got, _ := row[0].AsInt(); got != 3 {
			t.Fatalf("row k = %d", got)
		}
		n++
	}
	if cur.Err() != nil {
		t.Fatal(cur.Err())
	}
	if n != 11 {
		t.Fatalf("k=3 rows = %d, want 11", n)
	}
}

func TestIndexCursorResidualFilter(t *testing.T) {
	tbl := indexedTable(t, 100)
	point := Int(7)
	cur, err := tbl.NewIndexCursor("ik", IndexProbe{Point: &point}, 0)
	if err != nil {
		t.Fatal(err)
	}
	cur.SetFilter(func(r Row) (bool, error) {
		s, _ := r[1].AsText()
		return s == "v7", nil
	})
	n := 0
	for {
		if _, ok := cur.Next(); !ok {
			break
		}
		n++
	}
	if n != 1 {
		t.Fatalf("filtered rows = %d, want 1", n)
	}
}

func TestRangeProbeOnUnorderedIndexRejected(t *testing.T) {
	tbl := indexedTable(t, 10)
	lo := Int(1)
	if _, err := tbl.NewIndexCursor("ik", IndexProbe{Lo: &lo}, 0); err == nil {
		t.Fatal("range probe on a hash-like index must be rejected")
	}
	if _, err := tbl.NewIndexCursor("ghost", IndexProbe{Point: &lo}, 0); err == nil {
		t.Fatal("unknown index must be rejected")
	}
}

func TestDeleteRebuildsIndex(t *testing.T) {
	tbl := indexedTable(t, 50)
	// Delete all k=0 rows (ids 0,10,20,30,40) — compaction shifts IDs.
	tbl.Delete([]int{0, 10, 20, 30, 40})
	point := Int(9)
	cur, err := tbl.NewIndexCursor("ik", IndexProbe{Point: &point}, 0)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for {
		row, ok := cur.Next()
		if !ok {
			break
		}
		if got, _ := row[0].AsInt(); got != 9 {
			t.Fatalf("row k = %d after compaction", got)
		}
		n++
	}
	if n != 5 {
		t.Fatalf("k=9 rows after delete = %d, want 5", n)
	}
}

// TestIndexCursorDropsRowUpdatedOutOfPredicate: the matching IDs are
// frozen at the first refill, but a row updated out of the predicate
// between batches must NOT be returned — the cursor re-checks the key at
// copy time, matching the guarantee of the scan path's filter.
func TestIndexCursorDropsRowUpdatedOutOfPredicate(t *testing.T) {
	tbl := indexedTable(t, 100) // ten rows per key 0..9
	point := Int(6)
	cur, err := tbl.NewIndexCursor("ik", IndexProbe{Point: &point}, 2)
	if err != nil {
		t.Fatal(err)
	}
	got := 0
	for i := 0; i < 2; i++ { // drain the first batch only
		row, ok := cur.Next()
		if !ok {
			t.Fatalf("batch 1 ended after %d rows", got)
		}
		if k, _ := row[0].AsInt(); k != 6 {
			t.Fatalf("row k = %d", k)
		}
		got++
	}
	// Move every remaining k=6 row out of the predicate while the cursor
	// is parked between batches.
	for i := 0; i < 100; i++ {
		if v, err := tbl.Value(i, 0); err == nil {
			if k, _ := v.AsInt(); k == 6 && i > 26 { // rows 6,16 already emitted
				if err := tbl.Set(i, 0, Int(99)); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	for {
		row, ok := cur.Next()
		if !ok {
			break
		}
		if k, _ := row[0].AsInt(); k != 6 {
			t.Fatalf("cursor returned k=%d, violating its own predicate", k)
		}
		got++
	}
	if cur.Err() != nil {
		t.Fatal(cur.Err())
	}
	// 10 matched at resolution; 2 emitted before the update; row 26 was
	// still k=6; the other 7 were updated away and must be dropped.
	if got != 3 {
		t.Fatalf("emitted %d rows, want 3 (stale matches must be dropped)", got)
	}
}

// TestIndexProbesUnderConcurrentInserts hammers point probes while rows
// land, for the race detector: every probe must see a consistent batch.
func TestIndexProbesUnderConcurrentInserts(t *testing.T) {
	tbl := indexedTable(t, 100)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 100; i < 2000; i++ {
			if err := tbl.Insert(Int(int64(i%10)), Text("w")); err != nil {
				t.Error(err)
				return
			}
		}
		close(stop)
	}()
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				point := Int(4)
				cur, err := tbl.NewIndexCursor("ik", IndexProbe{Point: &point}, 8)
				if err != nil {
					t.Error(err)
					return
				}
				for {
					row, ok := cur.Next()
					if !ok {
						break
					}
					if got, _ := row[0].AsInt(); got != 4 {
						t.Errorf("probe saw k=%d", got)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}
