package storage

import (
	"encoding/json"
	"fmt"
)

// OpKind enumerates the typed mutation records a table or catalog emits.
type OpKind string

const (
	OpCreateTable OpKind = "create_table"
	OpDropTable   OpKind = "drop_table"
	OpInsert      OpKind = "insert"
	OpSet         OpKind = "set"
	OpAddColumn   OpKind = "add_column"
	OpFillColumn  OpKind = "fill_column"
	// OpDelete is the pre-MVCC compacting delete. It is no longer
	// emitted, but old WALs contain it; replay routes it to
	// Table.LegacyCompact so row indices in subsequent legacy records
	// keep resolving.
	OpDelete OpKind = "delete"
	// OpTombstone is the MVCC delete: Rows lists the physical row IDs
	// tombstoned. Row IDs are stable, so replay order is insensitive to
	// interleaved mutations.
	OpTombstone OpKind = "tombstone"
	// OpCompact records one compaction: Rows lists the tombstoned
	// physical row IDs the compactor removed, in ascending order. Replay
	// removes exactly those rows and shifts survivors down, so physical
	// IDs in records logged after the compaction resolve identically on
	// recovery. The record is logged only after the pin/fence admission
	// gate has passed — a logged OpCompact always applied.
	OpCompact OpKind = "compact"
)

// Op is one typed storage mutation — the unit a durability layer logs and
// replays. Every field is wire-serializable; which fields are meaningful
// depends on Kind:
//
//	create_table  Table, Columns
//	drop_table    Table
//	insert        Table, Values (one full row, post-coercion)
//	set           Table, Row, Col, Values[0]
//	add_column    Table, Column
//	fill_column   Table, Name, Values (one per live row, in scan order)
//	delete        Table, Rows (legacy compacting positions; replay-only)
//	tombstone     Table, Rows (physical row IDs)
//	compact       Table, Rows (removed physical row IDs, ascending)
type Op struct {
	Kind    OpKind   `json:"kind"`
	Table   string   `json:"table"`
	Columns []Column `json:"columns,omitempty"`
	Column  *Column  `json:"column,omitempty"`
	Name    string   `json:"name,omitempty"`
	Row     int      `json:"row,omitempty"`
	Col     int      `json:"col,omitempty"`
	Rows    []int    `json:"rows,omitempty"`
	Values  []Value  `json:"values,omitempty"`
}

// Journal receives every mutation applied to a catalog's tables, in apply
// order (records for one table are emitted under that table's lock; DDL
// under the catalog lock). Implementations must be safe for concurrent
// use. A LogOp error is propagated to the mutating caller where the
// method signature allows it (Insert, Set, AddColumn, FillColumn, Create);
// Delete and Drop cannot surface it — durability layers latch such
// failures internally (see wal.Err).
type Journal interface {
	LogOp(op Op) error
}

// SetJournal attaches j to the catalog and every current table; tables
// created afterwards inherit it. Pass nil to detach (used during replay,
// when mutations are re-applied and must not be re-logged).
func (c *Catalog) SetJournal(j Journal) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.journal = j
	for _, t := range c.tables {
		t.mu.Lock()
		t.journal = j
		t.mu.Unlock()
	}
}

// Observer is notified after a mutation has been successfully applied —
// journaled, validated, and visible in memory. It runs under the mutated
// table's write lock (DDL under the catalog lock), so implementations
// must be fast and must never call back into the table or catalog. The
// result-cache invalidation hook is the motivating consumer: it only
// bumps a per-table sequence number.
//
// Unlike Journal, an observer cannot veto or fail a mutation; it sees
// the op strictly after the fact.
type Observer func(Op)

// SetObserver attaches f to the catalog and every current table; tables
// created afterwards inherit it. Pass nil to detach. Like SetJournal it
// is wired after replay, so recovered mutations are not re-observed.
func (c *Catalog) SetObserver(f Observer) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.observer = f
	for _, t := range c.tables {
		t.mu.Lock()
		t.observer = f
		t.mu.Unlock()
	}
}

// valueJSON is Value's wire form. The kind tag disambiguates; absent
// payload fields decode to the kind's zero value, which round-trips
// correctly (e.g. Int(0) → {"k":2} → Int(0)).
type valueJSON struct {
	K Kind    `json:"k"`
	B bool    `json:"b,omitempty"`
	I int64   `json:"i,omitempty"`
	F float64 `json:"f,omitempty"`
	S string  `json:"s,omitempty"`
}

// MarshalJSON encodes the value in a kind-tagged wire form that preserves
// the int/float distinction JSON numbers would lose.
func (v Value) MarshalJSON() ([]byte, error) {
	return json.Marshal(valueJSON{K: v.kind, B: v.b, I: v.i, F: v.f, S: v.s})
}

// UnmarshalJSON decodes the wire form produced by MarshalJSON.
func (v *Value) UnmarshalJSON(data []byte) error {
	var w valueJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	switch w.K {
	case KindNull:
		*v = Null()
	case KindBool:
		*v = Bool(w.B)
	case KindInt:
		*v = Int(w.I)
	case KindFloat:
		*v = Float(w.F)
	case KindText:
		*v = Text(w.S)
	default:
		return fmt.Errorf("storage: unknown value kind %d", w.K)
	}
	return nil
}
