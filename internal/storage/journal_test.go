package storage

import (
	"encoding/json"
	"sync"
	"testing"
)

// recordingJournal captures emitted ops for assertions.
type recordingJournal struct {
	mu  sync.Mutex
	ops []Op
}

func (j *recordingJournal) LogOp(op Op) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	// Ops are emitted under the owning table's lock and may reference
	// live slices; deep-copy values so later assertions see the emission-
	// time state.
	cp := op
	cp.Values = append([]Value(nil), op.Values...)
	cp.Rows = append([]int(nil), op.Rows...)
	j.ops = append(j.ops, cp)
	return nil
}

func (j *recordingJournal) kinds() []OpKind {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]OpKind, len(j.ops))
	for i, op := range j.ops {
		out[i] = op.Kind
	}
	return out
}

func TestValueJSONRoundTrip(t *testing.T) {
	vals := []Value{
		Null(), Bool(true), Bool(false), Int(0), Int(-42), Int(1 << 60),
		Float(0), Float(3.25), Text(""), Text("quoted \"text\""),
	}
	blob, err := json.Marshal(vals)
	if err != nil {
		t.Fatal(err)
	}
	var back []Value
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if len(back) != len(vals) {
		t.Fatalf("round-tripped %d values, want %d", len(back), len(vals))
	}
	for i, v := range vals {
		if back[i].Kind() != v.Kind() || back[i].String() != v.String() {
			t.Errorf("value %d: %s(%s) → %s(%s)", i, v.Kind(), v, back[i].Kind(), back[i])
		}
	}
	// The int/float distinction must survive: Int(1) and Float(1) stringify
	// alike but are different kinds.
	one, _ := json.Marshal(Int(1))
	var v Value
	if err := json.Unmarshal(one, &v); err != nil {
		t.Fatal(err)
	}
	if v.Kind() != KindInt {
		t.Fatalf("Int(1) round-tripped to kind %s", v.Kind())
	}
}

func TestMutationsEmitTypedOps(t *testing.T) {
	j := &recordingJournal{}
	c := NewCatalog()
	c.SetJournal(j)

	schema, _ := NewSchema(
		Column{Name: "id", Kind: KindInt},
		Column{Name: "name", Kind: KindText},
	)
	tbl, err := c.Create("movies", schema)
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.Insert(Int(1), Text("alien")); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Insert(Int(2), Text("clue")); err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.AddColumn(Column{Name: "funny", Kind: KindBool, Perceptual: true, Origin: ColumnExpanded}); err != nil {
		t.Fatal(err)
	}
	if err := tbl.FillColumn("funny", []Value{Bool(false), Bool(true)}); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Set(0, 1, Text("aliens")); err != nil {
		t.Fatal(err)
	}
	if n := tbl.Delete([]int{1}); n != 1 {
		t.Fatalf("deleted %d rows, want 1", n)
	}
	if !c.Drop("movies") {
		t.Fatal("drop failed")
	}

	want := []OpKind{OpCreateTable, OpInsert, OpInsert, OpAddColumn, OpFillColumn, OpSet, OpTombstone, OpDropTable}
	got := j.kinds()
	if len(got) != len(want) {
		t.Fatalf("op kinds = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("op %d = %s, want %s (all: %v)", i, got[i], want[i], got)
		}
	}

	// Every op must survive a JSON round trip unchanged in kind and shape
	// — this is exactly what the WAL does to it.
	for _, op := range j.ops {
		blob, err := json.Marshal(op)
		if err != nil {
			t.Fatal(err)
		}
		var back Op
		if err := json.Unmarshal(blob, &back); err != nil {
			t.Fatal(err)
		}
		if back.Kind != op.Kind || back.Table != op.Table || len(back.Values) != len(op.Values) {
			t.Fatalf("op %s did not round-trip: %+v → %+v", op.Kind, op, back)
		}
	}

	// The add_column record must carry provenance: replay relies on it to
	// rebuild ColumnExpanded columns as expanded, not declared.
	addOp := j.ops[3]
	if addOp.Column == nil || addOp.Column.Origin != ColumnExpanded || !addOp.Column.Perceptual {
		t.Fatalf("add_column op lost provenance: %+v", addOp.Column)
	}
}

// TestRejectedMutationsNotLogged: validation failures must not reach the
// journal — a replayed log would otherwise re-fail (or worse, diverge).
func TestRejectedMutationsNotLogged(t *testing.T) {
	j := &recordingJournal{}
	c := NewCatalog()
	c.SetJournal(j)
	schema, _ := NewSchema(Column{Name: "id", Kind: KindInt})
	tbl, _ := c.Create("t", schema)
	before := len(j.kinds())

	if err := tbl.Insert(Text("not an int")); err == nil {
		t.Fatal("bad insert accepted")
	}
	if err := tbl.Insert(Int(1), Int(2)); err == nil {
		t.Fatal("bad arity accepted")
	}
	if _, err := tbl.AddColumn(Column{Name: "id", Kind: KindBool}); err == nil {
		t.Fatal("duplicate column accepted")
	}
	if err := tbl.FillColumn("missing", []Value{Int(1)}); err == nil {
		t.Fatal("fill of missing column accepted")
	}
	if err := tbl.Set(99, 0, Int(1)); err == nil {
		t.Fatal("out-of-range set accepted")
	}
	if got := len(j.kinds()); got != before {
		t.Fatalf("%d ops logged for rejected mutations: %v", got-before, j.kinds()[before:])
	}
}

// TestAddColumnRacingLiveScans drives concurrent schema expansion against
// continuous scans and point reads — the exact contention pattern of a
// crowd fill-in racing SELECT traffic. Run under -race this proves the
// locking; the assertions prove scans see internally consistent rows
// (arity either pre- or post-expansion, never torn).
func TestAddColumnRacingLiveScans(t *testing.T) {
	c := NewCatalog()
	schema, _ := NewSchema(Column{Name: "id", Kind: KindInt})
	tbl, _ := c.Create("t", schema)
	const rows = 200
	for i := 0; i < rows; i++ {
		if err := tbl.Insert(Int(int64(i))); err != nil {
			t.Fatal(err)
		}
	}

	const adders = 4
	const scanners = 4
	stop := make(chan struct{})
	var wg sync.WaitGroup
	errs := make(chan error, scanners)

	for g := 0; g < scanners; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				want := -1
				ok := true
				tbl.Scan(func(i int, row Row) bool {
					if want == -1 {
						want = len(row)
					} else if len(row) != want {
						ok = false
						return false
					}
					return true
				})
				if !ok {
					select {
					case errs <- errTornScan:
					default:
					}
					return
				}
				_, _ = tbl.Get(rows / 2)
				_ = tbl.NumCols()
			}
		}()
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		var awg sync.WaitGroup
		for g := 0; g < adders; g++ {
			awg.Add(1)
			go func(g int) {
				defer awg.Done()
				for k := 0; k < 8; k++ {
					col := Column{
						Name:       colName(g, k),
						Kind:       KindBool,
						Perceptual: true,
						Origin:     ColumnExpanded,
					}
					idx, err := tbl.AddColumn(col)
					if err != nil {
						t.Error(err)
						return
					}
					vals := make([]Value, rows)
					for i := range vals {
						vals[i] = Bool(i%2 == 0)
					}
					if err := tbl.FillColumn(col.Name, vals); err != nil {
						t.Error(err)
						return
					}
					if idx <= 0 {
						t.Errorf("column index %d", idx)
					}
				}
			}(g)
		}
		awg.Wait()
	}()

	<-done
	close(stop)
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}

	if got := tbl.NumCols(); got != 1+adders*8 {
		t.Fatalf("NumCols = %d, want %d", got, 1+adders*8)
	}
	// Every row must have full arity and every expanded column a value.
	tbl.Scan(func(i int, row Row) bool {
		if len(row) != 1+adders*8 {
			t.Fatalf("row %d has arity %d", i, len(row))
		}
		for c := 1; c < len(row); c++ {
			if row[c].IsNull() {
				t.Fatalf("row %d col %d unfilled", i, c)
			}
		}
		return i < 5 // spot-check the head
	})
}

var errTornScan = jsonError("scan observed torn row arity")

type jsonError string

func (e jsonError) Error() string { return string(e) }

func colName(g, k int) string {
	return "genre_" + string(rune('a'+g)) + "_" + string(rune('a'+k))
}
