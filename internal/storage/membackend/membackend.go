// Package membackend is the default storage.Backend: the MVCC columnar
// in-memory engine with all durable state carried inline in snapshots
// (the WAL above the seam provides crash recovery). It is a thin
// binding of the shared catalog machinery to the Backend contract —
// deliberately so, since the contract was extracted from it.
package membackend

import (
	"fmt"

	"crowddb/internal/storage"
)

func init() {
	storage.RegisterBackend("mem", func() storage.Backend { return New() })
}

// Backend serves tables from memory and snapshots them inline.
type Backend struct {
	catalog *storage.Catalog
}

// New returns an unopened in-memory backend.
func New() *Backend {
	return &Backend{catalog: storage.NewCatalog()}
}

// Name implements storage.Backend.
func (b *Backend) Name() string { return "mem" }

// Open implements storage.Backend. The data directory is unused: the
// WAL and snapshot files above the seam own all on-disk state.
func (b *Backend) Open(dir string) error { return nil }

// Catalog implements storage.Backend.
func (b *Backend) Catalog() *storage.Catalog { return b.catalog }

// ApplyOp implements storage.Backend.
func (b *Backend) ApplyOp(op storage.Op) error {
	return storage.ApplyCatalogOp(b.catalog, op)
}

// Capture implements storage.Backend: every table inline.
func (b *Backend) Capture() ([]storage.TableState, error) {
	return storage.CaptureCatalog(b.catalog), nil
}

// Restore implements storage.Backend.
func (b *Backend) Restore(states []storage.TableState) error {
	for _, ts := range states {
		if ts.External {
			return fmt.Errorf("membackend: snapshot references external table file %q; reopen with the backend that wrote it", ts.File)
		}
		if err := storage.RestoreCatalogTable(b.catalog, ts); err != nil {
			return err
		}
	}
	return nil
}

// Compact implements storage.Backend.
func (b *Backend) Compact(table string, policy storage.CompactionPolicy) (storage.CompactionResult, error) {
	tbl, ok := b.catalog.Get(table)
	if !ok {
		return storage.CompactionResult{}, fmt.Errorf("membackend: no such table %q", table)
	}
	return tbl.Compact(policy)
}

// RebuildIndexes implements storage.Backend.
func (b *Backend) RebuildIndexes(table string) error {
	tbl, ok := b.catalog.Get(table)
	if !ok {
		return fmt.Errorf("membackend: no such table %q", table)
	}
	tbl.RebuildIndexes()
	return nil
}

// Close implements storage.Backend.
func (b *Backend) Close() error { return nil }
