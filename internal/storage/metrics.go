package storage

import "crowddb/internal/obs"

// Storage-layer metric families (catalog: DESIGN.md §17). Process-wide
// across all tables and backends; per-table breakdowns stay on
// GET /v1/schema/{table} (CompactionStats, Tombstones, LiveSnapshotEpochs).
var (
	mChunkSeals = obs.Default.Counter("crowddb_storage_chunk_seals_total",
		"Column tail segments sealed into immutable 4096-row chunks.")
	mTombstones = obs.Default.Counter("crowddb_storage_tombstones_total",
		"Rows tombstoned by DELETE.")
	mCompactionRuns = obs.Default.Counter("crowddb_storage_compaction_runs_total",
		"Completed table compactions (replayed OpCompact records excluded).")
	mCompactionRows = obs.Default.Counter("crowddb_storage_compaction_rows_reclaimed_total",
		"Tombstoned rows physically removed by compaction.")
	mSnapshotPins = obs.Default.Gauge("crowddb_storage_snapshot_pins",
		"Currently pinned read snapshots across all tables.")
)
