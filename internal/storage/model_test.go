package storage

import (
	"math/rand"
	"testing"
)

// TestTableAgainstModel drives a Table with a random operation sequence
// mirrored against a plain-slice model; all reads must agree.
func TestTableAgainstModel(t *testing.T) {
	rng := rand.New(rand.NewSource(555))

	for trial := 0; trial < 20; trial++ {
		schema, err := NewSchema(
			Column{Name: "k", Kind: KindInt},
			Column{Name: "v", Kind: KindFloat},
		)
		if err != nil {
			t.Fatal(err)
		}
		tbl := NewTable("m", schema)
		type mrow struct {
			k int64
			v float64
		}
		var model []mrow
		cols := 2

		for op := 0; op < 200; op++ {
			switch rng.Intn(10) {
			case 0, 1, 2, 3: // insert
				k := int64(rng.Intn(1000))
				v := float64(rng.Intn(1000)) / 8
				row := make([]Value, cols)
				row[0], row[1] = Int(k), Float(v)
				for c := 2; c < cols; c++ {
					row[c] = Null()
				}
				if err := tbl.Insert(row...); err != nil {
					t.Fatal(err)
				}
				model = append(model, mrow{k: k, v: v})
			case 4, 5: // set
				if len(model) == 0 {
					continue
				}
				i := rng.Intn(len(model))
				v := float64(rng.Intn(1000)) / 8
				if err := tbl.Set(i, 1, Float(v)); err != nil {
					t.Fatal(err)
				}
				model[i].v = v
			case 6: // delete a random subset
				if len(model) == 0 {
					continue
				}
				var idx []int
				for i := range model {
					if rng.Float64() < 0.2 {
						idx = append(idx, i)
					}
				}
				removed := tbl.Delete(idx)
				kill := map[int]bool{}
				for _, i := range idx {
					kill[i] = true
				}
				kept := model[:0]
				for i, r := range model {
					if !kill[i] {
						kept = append(kept, r)
					}
				}
				if removed != len(model)-len(kept) {
					t.Fatalf("Delete removed %d, model says %d", removed, len(model)-len(kept))
				}
				model = kept
			case 7: // add a column (schema expansion), all NULLs
				if cols >= 6 {
					continue
				}
				name := string(rune('a' + cols))
				if _, err := tbl.AddColumn(Column{Name: name, Kind: KindText}); err != nil {
					t.Fatal(err)
				}
				cols++
			case 8: // point read
				if len(model) == 0 {
					continue
				}
				i := rng.Intn(len(model))
				got, err := tbl.Get(i)
				if err != nil {
					t.Fatal(err)
				}
				k, _ := got[0].AsInt()
				v, _ := got[1].AsFloat()
				if k != model[i].k || v != model[i].v {
					t.Fatalf("row %d = (%d, %g), model says (%d, %g)", i, k, v, model[i].k, model[i].v)
				}
			default: // full scan comparison
				if tbl.NumRows() != len(model) {
					t.Fatalf("NumRows = %d, model says %d", tbl.NumRows(), len(model))
				}
				i := 0
				tbl.Scan(func(idx int, row Row) bool {
					k, _ := row[0].AsInt()
					v, _ := row[1].AsFloat()
					if k != model[i].k || v != model[i].v {
						t.Fatalf("scan row %d mismatch", i)
					}
					if len(row) != cols {
						t.Fatalf("row width %d, want %d", len(row), cols)
					}
					i++
					return true
				})
				if i != len(model) {
					t.Fatalf("scan visited %d rows, model has %d", i, len(model))
				}
			}
		}
	}
}
