package storage

import (
	"math/rand"
	"testing"
)

// TestTableAgainstModel drives a Table with a random operation sequence
// mirrored against a plain-slice model; all reads must agree. Row IDs
// are physical and stable (Delete tombstones instead of compacting), so
// the model tracks each live row's physical ID alongside its values.
func TestTableAgainstModel(t *testing.T) {
	rng := rand.New(rand.NewSource(555))

	for trial := 0; trial < 20; trial++ {
		schema, err := NewSchema(
			Column{Name: "k", Kind: KindInt},
			Column{Name: "v", Kind: KindFloat},
		)
		if err != nil {
			t.Fatal(err)
		}
		tbl := NewTable("m", schema)
		type mrow struct {
			id int // physical row ID
			k  int64
			v  float64
		}
		var model []mrow // live rows, ascending by physical ID
		inserted := 0    // total physical rows ever inserted
		cols := 2

		for op := 0; op < 200; op++ {
			switch rng.Intn(10) {
			case 0, 1, 2, 3: // insert
				k := int64(rng.Intn(1000))
				v := float64(rng.Intn(1000)) / 8
				row := make([]Value, cols)
				row[0], row[1] = Int(k), Float(v)
				for c := 2; c < cols; c++ {
					row[c] = Null()
				}
				if err := tbl.Insert(row...); err != nil {
					t.Fatal(err)
				}
				model = append(model, mrow{id: inserted, k: k, v: v})
				inserted++
			case 4, 5: // set, by physical ID
				if len(model) == 0 {
					continue
				}
				i := rng.Intn(len(model))
				v := float64(rng.Intn(1000)) / 8
				if err := tbl.Set(model[i].id, 1, Float(v)); err != nil {
					t.Fatal(err)
				}
				model[i].v = v
			case 6: // delete a random subset of live rows
				if len(model) == 0 {
					continue
				}
				var ids []int
				kill := map[int]bool{}
				for _, r := range model {
					if rng.Float64() < 0.2 {
						ids = append(ids, r.id)
						kill[r.id] = true
					}
				}
				removed := tbl.Delete(ids)
				kept := model[:0]
				for _, r := range model {
					if !kill[r.id] {
						kept = append(kept, r)
					}
				}
				if removed != len(ids) {
					t.Fatalf("Delete removed %d, model says %d", removed, len(ids))
				}
				model = kept
				// Deleting again (and out-of-range IDs) must be a no-op.
				if again := tbl.Delete(append(ids, -1, inserted+5)); again != 0 {
					t.Fatalf("re-Delete removed %d, want 0", again)
				}
			case 7: // add a column (schema expansion), all NULLs
				if cols >= 6 {
					continue
				}
				name := string(rune('a' + cols))
				if _, err := tbl.AddColumn(Column{Name: name, Kind: KindText}); err != nil {
					t.Fatal(err)
				}
				cols++
			case 8: // point read, by physical ID
				if len(model) == 0 {
					continue
				}
				i := rng.Intn(len(model))
				got, err := tbl.Get(model[i].id)
				if err != nil {
					t.Fatal(err)
				}
				k, _ := got[0].AsInt()
				v, _ := got[1].AsFloat()
				if k != model[i].k || v != model[i].v {
					t.Fatalf("row %d = (%d, %g), model says (%d, %g)", model[i].id, k, v, model[i].k, model[i].v)
				}
			default: // full scan comparison
				if tbl.NumRows() != len(model) {
					t.Fatalf("NumRows = %d, model says %d", tbl.NumRows(), len(model))
				}
				i := 0
				tbl.Scan(func(idx int, row Row) bool {
					if idx != model[i].id {
						t.Fatalf("scan row %d has physical ID %d, model says %d", i, idx, model[i].id)
					}
					k, _ := row[0].AsInt()
					v, _ := row[1].AsFloat()
					if k != model[i].k || v != model[i].v {
						t.Fatalf("scan row %d mismatch", i)
					}
					if len(row) != cols {
						t.Fatalf("row width %d, want %d", len(row), cols)
					}
					i++
					return true
				})
				if i != len(model) {
					t.Fatalf("scan visited %d rows, model has %d", i, len(model))
				}
			}
		}

		// A tombstoned row must be unreadable and unwritable.
		if inserted > len(model) {
			dead := -1
			live := map[int]bool{}
			for _, r := range model {
				live[r.id] = true
			}
			for id := 0; id < inserted; id++ {
				if !live[id] {
					dead = id
					break
				}
			}
			if dead >= 0 {
				if _, err := tbl.Get(dead); err == nil {
					t.Fatalf("Get(%d) on a deleted row succeeded", dead)
				}
				if err := tbl.Set(dead, 0, Int(1)); err == nil {
					t.Fatalf("Set(%d) on a deleted row succeeded", dead)
				}
			}
		}
	}
}
