package storage

import (
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

func mvccTable(t *testing.T, rows int) *Table {
	t.Helper()
	c := NewCatalog()
	schema, err := NewSchema(
		Column{Name: "id", Kind: KindInt},
		Column{Name: "score", Kind: KindFloat},
	)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := c.Create("t", schema)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < rows; i++ {
		if err := tbl.Insert(Int(int64(i)), Float(float64(i)*0.5)); err != nil {
			t.Fatal(err)
		}
	}
	return tbl
}

// TestCursorPinnedBeforeDeleteSeesDeletedRows is the concurrent-delete
// cursor regression test: a cursor pins its snapshot at creation, so a
// Delete landing mid-scan must neither hide rows from it nor shift the
// rows it has yet to visit (pre-MVCC, compaction under the scan could
// skip or duplicate rows). A cursor opened after the Delete sees only
// the survivors.
func TestCursorPinnedBeforeDeleteSeesDeletedRows(t *testing.T) {
	const rows = 1000
	tbl := mvccTable(t, rows)

	cur := tbl.NewCursor(16)
	// Drain a few rows, then delete a spread that includes rows already
	// read, rows inside the current batch, and rows far ahead.
	var got []int64
	for i := 0; i < 10; i++ {
		row, ok := cur.Next()
		if !ok {
			t.Fatalf("cursor ended at row %d: %v", i, cur.Err())
		}
		id, _ := row[0].AsInt()
		got = append(got, id)
	}
	doomed := []int{3, 11, 12, 13, 500, 998, 999}
	if n := tbl.Delete(doomed); n != len(doomed) {
		t.Fatalf("Delete removed %d rows, want %d", n, len(doomed))
	}
	for {
		row, ok := cur.Next()
		if !ok {
			break
		}
		id, _ := row[0].AsInt()
		got = append(got, id)
	}
	if err := cur.Err(); err != nil {
		t.Fatal(err)
	}
	if len(got) != rows {
		t.Fatalf("pinned cursor saw %d rows, want all %d", len(got), rows)
	}
	for i, id := range got {
		if id != int64(i) {
			t.Fatalf("row %d: id = %d, want %d (skew under concurrent delete)", i, id, i)
		}
	}

	after := tbl.NewCursor(0)
	seen := map[int64]bool{}
	for {
		row, ok := after.Next()
		if !ok {
			break
		}
		id, _ := row[0].AsInt()
		seen[id] = true
	}
	if err := after.Err(); err != nil {
		t.Fatal(err)
	}
	if len(seen) != rows-len(doomed) {
		t.Fatalf("post-delete cursor saw %d rows, want %d", len(seen), rows-len(doomed))
	}
	for _, d := range doomed {
		if seen[int64(d)] {
			t.Fatalf("post-delete cursor saw tombstoned row %d", d)
		}
	}
	if tbl.NumRows() != rows-len(doomed) {
		t.Fatalf("NumRows = %d, want %d", tbl.NumRows(), rows-len(doomed))
	}
}

// TestCursorScanRacingDeletes hammers scans against concurrent Deletes
// under -race: every scan must see exactly the live set of the snapshot
// it pinned — a count between the final live count and the initial row
// count, with strictly increasing ids and no duplicates.
func TestCursorScanRacingDeletes(t *testing.T) {
	const rows = 5000
	tbl := mvccTable(t, rows)

	var stop atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for d := 0; d < rows/2 && !stop.Load(); d += 50 {
			batch := make([]int, 0, 25)
			for r := d; r < d+25; r++ {
				batch = append(batch, r*2)
			}
			if n := tbl.Delete(batch); n != len(batch) {
				t.Errorf("Delete removed %d rows, want %d", n, len(batch))
				return
			}
		}
	}()

	for scan := 0; scan < 40; scan++ {
		cur := tbl.NewCursor(0)
		last := int64(-1)
		n := 0
		for {
			row, ok := cur.Next()
			if !ok {
				break
			}
			id, _ := row[0].AsInt()
			if id <= last {
				t.Fatalf("scan %d: id %d after %d (out of order or duplicated)", scan, id, last)
			}
			last = id
			n++
		}
		if err := cur.Err(); err != nil {
			t.Fatal(err)
		}
		if n > rows || n < rows/2 {
			t.Fatalf("scan %d: %d rows outside [%d, %d]", scan, n, rows/2, rows)
		}
	}
	stop.Store(true)
	wg.Wait()
}

// TestTornChunkPositionedError corrupts a sealed chunk and a tail and
// verifies the cursor surfaces a positioned decode error — table name,
// chunk, row, column — through Err instead of silently ending the scan.
func TestTornChunkPositionedError(t *testing.T) {
	tbl := mvccTable(t, ChunkRows+10)

	t.Run("sealed chunk", func(t *testing.T) {
		v := tbl.snap.Load()
		nv := v.clone()
		nv.cols[0].chunks = append([][]Value(nil), nv.cols[0].chunks...)
		nv.cols[0].chunks[0] = nv.cols[0].chunks[0][:100] // tear chunk 0 of "id"
		tbl.snap.Store(nv)
		defer tbl.snap.Store(v)

		cur := tbl.NewCursor(0)
		if row, ok := cur.Next(); ok {
			t.Fatalf("Next returned a row from a torn chunk: %v", row)
		}
		err := cur.Err()
		if err == nil {
			t.Fatal("Err = nil, want positioned torn-chunk error")
		}
		for _, want := range []string{"storage: table t:", "torn chunk 0", "row 100", `column "id"`} {
			if !strings.Contains(err.Error(), want) {
				t.Fatalf("error %q missing %q", err, want)
			}
		}
	})

	t.Run("tail", func(t *testing.T) {
		v := tbl.snap.Load()
		nv := v.clone()
		nv.cols[1].tail = nv.cols[1].tail[:4] // tear the 10-row tail of "score"
		tbl.snap.Store(nv)
		defer tbl.snap.Store(v)

		cur := tbl.NewCursor(0)
		n := 0
		for {
			if _, ok := cur.Next(); !ok {
				break
			}
			n++
		}
		if n != ChunkRows {
			t.Fatalf("rows before tail error = %d, want %d", n, ChunkRows)
		}
		err := cur.Err()
		if err == nil {
			t.Fatal("Err = nil, want positioned torn-tail error")
		}
		for _, want := range []string{"storage: table t:", "torn tail", "row " + itoa(ChunkRows+4), `column "score"`} {
			if !strings.Contains(err.Error(), want) {
				t.Fatalf("error %q missing %q", err, want)
			}
		}
	})
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// TestSnapshotScanDuringBulkFill pins cursors while a writer bulk-loads
// rows and backfills an expansion column, proving snapshot stability
// end to end: every cursor sees exactly the row count and the column
// arity of the version it pinned, no matter how much lands afterwards.
func TestSnapshotScanDuringBulkFill(t *testing.T) {
	const seed = 2 * ChunkRows
	tbl := mvccTable(t, seed)

	var wg sync.WaitGroup
	start := make(chan struct{})
	wg.Add(1)
	go func() { // bulk writer: appends + AddColumn + FillColumn
		defer wg.Done()
		<-start
		for i := 0; i < 3*ChunkRows; i++ {
			if err := tbl.Insert(Int(int64(seed+i)), Float(0)); err != nil {
				t.Error(err)
				return
			}
		}
		if _, err := tbl.AddColumn(Column{Name: "genre", Kind: KindBool}); err != nil {
			t.Error(err)
			return
		}
		fill := make([]Value, tbl.NumRows())
		for i := range fill {
			fill[i] = Bool(i%2 == 0)
		}
		if err := tbl.FillColumn("genre", fill); err != nil {
			t.Error(err)
		}
	}()

	const readers = 4
	wg.Add(readers)
	for r := 0; r < readers; r++ {
		go func() {
			defer wg.Done()
			<-start
			for scan := 0; scan < 30; scan++ {
				snap := tbl.Pin()
				pinned := snap.NumRows() // no deletes: physical == live
				cur := NewRangeCursorAt(snap, 0, -1, 0)
				width := 0
				n := 0
				for {
					row, ok := cur.Next()
					if !ok {
						break
					}
					if n == 0 {
						width = len(row)
					} else if len(row) != width {
						t.Errorf("scan %d: torn arity %d then %d", scan, width, len(row))
						snap.Release()
						return
					}
					n++
				}
				err := cur.Err()
				snap.Release()
				if err != nil {
					t.Error(err)
					return
				}
				if n != pinned {
					t.Errorf("scan %d: %d rows, want exactly the pinned %d", scan, n, pinned)
					return
				}
			}
		}()
	}
	close(start)
	wg.Wait()

	if n := tbl.NumRows(); n != seed+3*ChunkRows {
		t.Fatalf("final NumRows = %d, want %d", n, seed+3*ChunkRows)
	}
	if got := tbl.LiveSnapshotEpochs(); len(got) != 0 {
		t.Fatalf("leaked snapshot pins: %v", got)
	}
}
