package storage

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// ColumnOrigin records how a column came to exist. Query-driven schema
// expansion (the paper's contribution) creates ColumnExpanded columns; the
// provenance matters for quality accounting and for the REPL's \d output.
type ColumnOrigin uint8

const (
	// ColumnDeclared columns come from CREATE TABLE.
	ColumnDeclared ColumnOrigin = iota
	// ColumnExpanded columns were added at query time by a schema
	// expansion strategy.
	ColumnExpanded
)

func (o ColumnOrigin) String() string {
	if o == ColumnExpanded {
		return "expanded"
	}
	return "declared"
}

// Column describes one attribute of a table.
type Column struct {
	Name string
	Kind Kind
	// Perceptual marks attributes that rely on human judgment (genre,
	// humor, …) as opposed to factual attributes (year, director). Only
	// perceptual attributes can be filled from a perceptual space; factual
	// ones must be crowd-sourced individually (paper §2).
	Perceptual bool
	Origin     ColumnOrigin
}

// Schema is an ordered list of columns with unique case-insensitive names.
type Schema struct {
	cols  []Column
	index map[string]int
}

// NewSchema builds a schema from cols. Duplicate names are an error.
func NewSchema(cols ...Column) (*Schema, error) {
	s := &Schema{index: make(map[string]int, len(cols))}
	for _, c := range cols {
		if err := s.add(c); err != nil {
			return nil, err
		}
	}
	return s, nil
}

func normName(name string) string { return strings.ToLower(name) }

// validate checks that c could be added without mutating anything —
// split from add so AddColumn can validate before logging the mutation.
func (s *Schema) validate(c Column) error {
	if c.Name == "" {
		return fmt.Errorf("storage: empty column name")
	}
	if _, dup := s.index[normName(c.Name)]; dup {
		return fmt.Errorf("storage: duplicate column %q", c.Name)
	}
	return nil
}

func (s *Schema) add(c Column) error {
	if err := s.validate(c); err != nil {
		return err
	}
	s.index[normName(c.Name)] = len(s.cols)
	s.cols = append(s.cols, c)
	return nil
}

// Len returns the number of columns.
func (s *Schema) Len() int { return len(s.cols) }

// Column returns the i-th column.
func (s *Schema) Column(i int) Column { return s.cols[i] }

// Columns returns a copy of the column list.
func (s *Schema) Columns() []Column {
	out := make([]Column, len(s.cols))
	copy(out, s.cols)
	return out
}

// Lookup returns the index of the named column (case-insensitive).
func (s *Schema) Lookup(name string) (int, bool) {
	i, ok := s.index[normName(name)]
	return i, ok
}

// Row is a tuple; the i-th entry corresponds to schema column i.
type Row []Value

// Clone returns a copy of the row.
func (r Row) Clone() Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}

// Table is an in-memory, mutex-guarded row store.
//
// The lock makes concurrent crowd fill-ins safe: the crowd simulator
// completes HITs on goroutines while the engine keeps serving reads.
//
// When a Journal is attached (via Catalog.SetJournal), every mutation
// emits a typed Op record before it is applied, under the same lock —
// the write-ahead discipline the durability layer replays from.
type Table struct {
	name string

	mu       sync.RWMutex
	schema   *Schema
	rows     []Row
	journal  Journal
	observer Observer
	// indexes maps index name (lower) → attached secondary index. Indexes
	// are maintained synchronously under mu by every mutator below —
	// including bulk crowd fills of expanded columns — so a probe is never
	// stale relative to the rows (see index.go).
	indexes map[string]ColumnIndex
}

// logOp emits op to the attached journal. Caller holds t.mu; validation
// must already have passed, so applying after a successful log cannot
// fail and the log never diverges from memory.
func (t *Table) logOp(op Op) error {
	if t.journal == nil {
		return nil
	}
	return t.journal.LogOp(op)
}

// notify reports an applied mutation to the attached observer. Caller
// holds t.mu (write); the mutation has already succeeded.
func (t *Table) notify(op Op) {
	if t.observer != nil {
		t.observer(op)
	}
}

// NewTable creates an empty table with the given schema.
func NewTable(name string, schema *Schema) *Table {
	return &Table{name: name, schema: schema}
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Schema returns a snapshot of the table's schema.
func (t *Table) Schema() *Schema {
	t.mu.RLock()
	defer t.mu.RUnlock()
	s, _ := NewSchema(t.schema.cols...)
	return s
}

// NumRows returns the row count.
func (t *Table) NumRows() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.rows)
}

// NumCols returns the column count.
func (t *Table) NumCols() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.schema.Len()
}

// Insert appends a row after validating arity and coercing each value to
// its column kind.
func (t *Table) Insert(vals ...Value) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(vals) != t.schema.Len() {
		return fmt.Errorf("storage: table %s expects %d values, got %d", t.name, t.schema.Len(), len(vals))
	}
	row := make(Row, len(vals))
	for i, v := range vals {
		cv, err := v.Coerce(t.schema.Column(i).Kind)
		if err != nil {
			return fmt.Errorf("storage: column %s: %w", t.schema.Column(i).Name, err)
		}
		row[i] = cv
	}
	if err := t.logOp(Op{Kind: OpInsert, Table: t.name, Values: row}); err != nil {
		return err
	}
	t.rows = append(t.rows, row)
	rowID := len(t.rows) - 1
	for _, idx := range t.indexes {
		if col, ok := t.schema.Lookup(idx.Column()); ok {
			idx.Add(rowID, row[col])
		}
	}
	t.notify(Op{Kind: OpInsert, Table: t.name})
	return nil
}

// Get returns a copy of row i.
func (t *Table) Get(i int) (Row, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if i < 0 || i >= len(t.rows) {
		return nil, fmt.Errorf("storage: row %d out of range [0,%d)", i, len(t.rows))
	}
	return t.rows[i].Clone(), nil
}

// Set overwrites the value at (row, col) after coercion.
func (t *Table) Set(row, col int, v Value) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if row < 0 || row >= len(t.rows) {
		return fmt.Errorf("storage: row %d out of range [0,%d)", row, len(t.rows))
	}
	if col < 0 || col >= t.schema.Len() {
		return fmt.Errorf("storage: column %d out of range [0,%d)", col, t.schema.Len())
	}
	cv, err := v.Coerce(t.schema.Column(col).Kind)
	if err != nil {
		return err
	}
	if err := t.logOp(Op{Kind: OpSet, Table: t.name, Row: row, Col: col, Values: []Value{cv}}); err != nil {
		return err
	}
	old := t.rows[row][col]
	t.rows[row][col] = cv
	for _, idx := range t.indexesOn(t.schema.Column(col).Name) {
		idx.Replace(row, old, cv)
	}
	t.notify(Op{Kind: OpSet, Table: t.name})
	return nil
}

// Value returns the value at (row, col).
func (t *Table) Value(row, col int) (Value, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if row < 0 || row >= len(t.rows) {
		return Null(), fmt.Errorf("storage: row %d out of range [0,%d)", row, len(t.rows))
	}
	if col < 0 || col >= t.schema.Len() {
		return Null(), fmt.Errorf("storage: column %d out of range [0,%d)", col, t.schema.Len())
	}
	return t.rows[row][col], nil
}

// AddColumn appends a new column (schema expansion). Every existing row
// receives NULL for it. Returns the new column's index.
func (t *Table) AddColumn(c Column) (int, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	// Validate before logging so the journal never records a rejected op.
	if err := t.schema.validate(c); err != nil {
		return 0, err
	}
	if err := t.logOp(Op{Kind: OpAddColumn, Table: t.name, Column: &c}); err != nil {
		return 0, err
	}
	if err := t.schema.add(c); err != nil {
		return 0, err
	}
	for i := range t.rows {
		t.rows[i] = append(t.rows[i], Null())
	}
	t.notify(Op{Kind: OpAddColumn, Table: t.name})
	return t.schema.Len() - 1, nil
}

// FillColumn assigns vals (one per row, in row order) to the named column.
// It is the bulk write path used by expansion strategies after a classifier
// has produced values for every tuple.
func (t *Table) FillColumn(name string, vals []Value) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	col, ok := t.schema.Lookup(name)
	if !ok {
		return fmt.Errorf("storage: table %s has no column %q", t.name, name)
	}
	if len(vals) != len(t.rows) {
		return fmt.Errorf("storage: FillColumn %s: %d values for %d rows", name, len(vals), len(t.rows))
	}
	kind := t.schema.Column(col).Kind
	coerced := make([]Value, len(vals))
	for i, v := range vals {
		cv, err := v.Coerce(kind)
		if err != nil {
			return fmt.Errorf("storage: FillColumn %s row %d: %w", name, i, err)
		}
		coerced[i] = cv
	}
	if err := t.logOp(Op{Kind: OpFillColumn, Table: t.name, Name: name, Values: coerced}); err != nil {
		return err
	}
	for i, cv := range coerced {
		t.rows[i][col] = cv
	}
	// Bulk rebuild beats len(rows) incremental Replace calls — this is
	// the crowd-fill landing path for expanded columns.
	for _, idx := range t.indexesOn(name) {
		idx.Rebuild(coerced)
	}
	t.notify(Op{Kind: OpFillColumn, Table: t.name})
	return nil
}

// ScanFunc is invoked once per row during Scan. Returning false stops the
// scan early. The row must not be mutated or retained.
type ScanFunc func(rowIdx int, row Row) bool

// Scan iterates over all rows under a read lock.
func (t *Table) Scan(f ScanFunc) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	for i, r := range t.rows {
		if !f(i, r) {
			return
		}
	}
}

// Delete removes rows whose indices appear in idx. Indices outside the
// valid range are ignored.
func (t *Table) Delete(idx []int) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(idx) == 0 {
		return 0
	}
	kill := make(map[int]bool, len(idx))
	for _, i := range idx {
		if i >= 0 && i < len(t.rows) {
			kill[i] = true
		}
	}
	if len(kill) == 0 {
		return 0
	}
	killed := make([]int, 0, len(kill))
	for i := range kill {
		killed = append(killed, i)
	}
	sort.Ints(killed)
	// Delete's signature cannot surface a journal failure; the durability
	// layer latches it (wal.Err) and reports at the next Snapshot/Close.
	_ = t.logOp(Op{Kind: OpDelete, Table: t.name, Rows: killed})
	out := t.rows[:0]
	for i, r := range t.rows {
		if !kill[i] {
			out = append(out, r)
		}
	}
	n := len(t.rows) - len(out)
	t.rows = out
	if n > 0 {
		// Compaction shifted row IDs; rebuilding is simpler than patching
		// and deletes are rare in the append+fill serving workload.
		t.rebuildIndexes()
		t.notify(Op{Kind: OpDelete, Table: t.name})
	}
	return n
}

// Catalog maps table names to tables, case-insensitively.
type Catalog struct {
	mu       sync.RWMutex
	tables   map[string]*Table
	journal  Journal
	observer Observer
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{tables: make(map[string]*Table)}
}

// Create registers a new table. Duplicate names are an error.
func (c *Catalog) Create(name string, schema *Schema) (*Table, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	key := normName(name)
	if _, dup := c.tables[key]; dup {
		return nil, fmt.Errorf("storage: table %q already exists", name)
	}
	if c.journal != nil {
		if err := c.journal.LogOp(Op{Kind: OpCreateTable, Table: name, Columns: schema.Columns()}); err != nil {
			return nil, err
		}
	}
	t := NewTable(name, schema)
	t.journal = c.journal
	t.observer = c.observer
	c.tables[key] = t
	if c.observer != nil {
		c.observer(Op{Kind: OpCreateTable, Table: name})
	}
	return t, nil
}

// Get returns the named table.
func (c *Catalog) Get(name string) (*Table, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	t, ok := c.tables[normName(name)]
	return t, ok
}

// Drop removes the named table, reporting whether it existed.
func (c *Catalog) Drop(name string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	key := normName(name)
	_, ok := c.tables[key]
	if ok && c.journal != nil {
		// Drop's signature cannot surface a journal failure; see Delete.
		_ = c.journal.LogOp(Op{Kind: OpDropTable, Table: name})
	}
	delete(c.tables, key)
	if ok && c.observer != nil {
		c.observer(Op{Kind: OpDropTable, Table: name})
	}
	return ok
}

// Names returns the sorted list of table names.
func (c *Catalog) Names() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.tables))
	for _, t := range c.tables {
		out = append(out, t.Name())
	}
	sort.Strings(out)
	return out
}
