package storage

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// ColumnOrigin records how a column came to exist. Query-driven schema
// expansion (the paper's contribution) creates ColumnExpanded columns; the
// provenance matters for quality accounting and for the REPL's \d output.
type ColumnOrigin uint8

const (
	// ColumnDeclared columns come from CREATE TABLE.
	ColumnDeclared ColumnOrigin = iota
	// ColumnExpanded columns were added at query time by a schema
	// expansion strategy.
	ColumnExpanded
)

func (o ColumnOrigin) String() string {
	if o == ColumnExpanded {
		return "expanded"
	}
	return "declared"
}

// Column describes one attribute of a table.
type Column struct {
	Name string
	Kind Kind
	// Perceptual marks attributes that rely on human judgment (genre,
	// humor, …) as opposed to factual attributes (year, director). Only
	// perceptual attributes can be filled from a perceptual space; factual
	// ones must be crowd-sourced individually (paper §2).
	Perceptual bool
	Origin     ColumnOrigin
}

// Schema is an ordered list of columns with unique case-insensitive names.
// Once attached to a published table version a Schema is immutable;
// AddColumn installs a fresh copy.
type Schema struct {
	cols  []Column
	index map[string]int
}

// NewSchema builds a schema from cols. Duplicate names are an error.
func NewSchema(cols ...Column) (*Schema, error) {
	s := &Schema{index: make(map[string]int, len(cols))}
	for _, c := range cols {
		if err := s.add(c); err != nil {
			return nil, err
		}
	}
	return s, nil
}

func normName(name string) string { return strings.ToLower(name) }

// validate checks that c could be added without mutating anything —
// split from add so AddColumn can validate before logging the mutation.
func (s *Schema) validate(c Column) error {
	if c.Name == "" {
		return fmt.Errorf("storage: empty column name")
	}
	if _, dup := s.index[normName(c.Name)]; dup {
		return fmt.Errorf("storage: duplicate column %q", c.Name)
	}
	return nil
}

func (s *Schema) add(c Column) error {
	if err := s.validate(c); err != nil {
		return err
	}
	s.index[normName(c.Name)] = len(s.cols)
	s.cols = append(s.cols, c)
	return nil
}

// cloneWith returns a copy of s with c appended; c must already be
// validated against s.
func (s *Schema) cloneWith(c Column) *Schema {
	ns := &Schema{
		cols:  make([]Column, len(s.cols), len(s.cols)+1),
		index: make(map[string]int, len(s.cols)+1),
	}
	copy(ns.cols, s.cols)
	for k, v := range s.index {
		ns.index[k] = v
	}
	ns.index[normName(c.Name)] = len(ns.cols)
	ns.cols = append(ns.cols, c)
	return ns
}

// Len returns the number of columns.
func (s *Schema) Len() int { return len(s.cols) }

// Column returns the i-th column.
func (s *Schema) Column(i int) Column { return s.cols[i] }

// Columns returns a copy of the column list.
func (s *Schema) Columns() []Column {
	out := make([]Column, len(s.cols))
	copy(out, s.cols)
	return out
}

// Lookup returns the index of the named column (case-insensitive).
func (s *Schema) Lookup(name string) (int, bool) {
	i, ok := s.index[normName(name)]
	return i, ok
}

// Row is a tuple; the i-th entry corresponds to schema column i.
type Row []Value

// Clone returns a copy of the row.
func (r Row) Clone() Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}

// Table is an in-memory MVCC column store.
//
// Data lives in an immutable *version reached through one atomic
// pointer (see version.go). Readers — streaming cursors, parallel
// morsels, point Gets — load the pointer and proceed with zero locks,
// so long scans never contend with the bulk crowd-fill landing path.
// Writers serialize on mu, build the next version copy-on-write, and
// publish it together with the matching index updates under idxMu, so
// an index probe and the snapshot it resolves against are always
// mutually consistent.
//
// Row IDs are physical and stable for the table's lifetime: Delete
// tombstones rows instead of compacting, which is what makes open
// cursors immune to concurrent deletes.
//
// When a Journal is attached (via Catalog.SetJournal), every mutation
// emits a typed Op record before it is applied, under mu — the
// write-ahead discipline the durability layer replays from.
type Table struct {
	name string

	mu       sync.Mutex // serializes writers; readers never take it
	snap     atomic.Pointer[version]
	journal  Journal
	observer Observer

	// idxMu couples snapshot publication with index maintenance: every
	// commit stores the new version and patches the indexes inside
	// idxMu.Lock, and index-cursor creation reads both under idxMu.RLock.
	// Plain table scans never touch it.
	idxMu   sync.RWMutex
	indexes map[string]ColumnIndex

	// pinMu guards the snapshot-pin registry (see version.go) and the
	// compaction admission state below (see compact.go).
	pinMu sync.Mutex
	pins  map[uint64]int

	// compacting is set for the duration of a compaction's build+publish;
	// write fences wait on it via fenceCond. fences counts callers that
	// hold physical row IDs across a scan→mutate window — compaction
	// admission is refused while any are live.
	compacting bool
	fences     int
	fenceCond  *sync.Cond

	// Compaction counters, readable lock-free via CompactionStats.
	compactRuns      atomic.Int64
	compactRows      atomic.Int64
	compactChunks    atomic.Int64
	compactBytes     atomic.Int64
	compactLastEpoch atomic.Uint64
}

// logOp emits op to the attached journal. Caller holds t.mu; validation
// must already have passed, so applying after a successful log cannot
// fail and the log never diverges from memory.
func (t *Table) logOp(op Op) error {
	if t.journal == nil {
		return nil
	}
	return t.journal.LogOp(op)
}

// notify reports an applied mutation to the attached observer. Caller
// holds t.mu; the mutation has already been published.
func (t *Table) notify(op Op) {
	if t.observer != nil {
		t.observer(op)
	}
}

// publish installs nv as the current version, holding idxMu so index
// updates ride in the same critical section when the caller needs them.
// apply may be nil.
func (t *Table) publish(nv *version, apply func()) {
	t.idxMu.Lock()
	t.snap.Store(nv)
	if apply != nil {
		apply()
	}
	t.idxMu.Unlock()
}

// NewTable creates an empty table with the given schema.
func NewTable(name string, schema *Schema) *Table {
	t := &Table{name: name}
	t.snap.Store(newVersion(schema))
	return t
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Schema returns a snapshot of the table's schema.
func (t *Table) Schema() *Schema {
	v := t.snap.Load()
	s, _ := NewSchema(v.schema.cols...)
	return s
}

// NumRows returns the live row count (tombstoned rows excluded).
func (t *Table) NumRows() int {
	return t.snap.Load().live()
}

// NumCols returns the column count.
func (t *Table) NumCols() int {
	return t.snap.Load().schema.Len()
}

// Insert appends a row after validating arity and coercing each value to
// its column kind.
func (t *Table) Insert(vals ...Value) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	v := t.snap.Load()
	if len(vals) != v.schema.Len() {
		return fmt.Errorf("storage: table %s expects %d values, got %d", t.name, v.schema.Len(), len(vals))
	}
	row := make(Row, len(vals))
	for i, val := range vals {
		cv, err := val.Coerce(v.schema.Column(i).Kind)
		if err != nil {
			return fmt.Errorf("storage: column %s: %w", v.schema.Column(i).Name, err)
		}
		row[i] = cv
	}
	if err := t.logOp(Op{Kind: OpInsert, Table: t.name, Values: row}); err != nil {
		return err
	}
	nv := v.clone()
	tailLen := v.nrows - v.sealed
	for i := range nv.cols {
		nv.cols[i].tail = appendTail(nv.cols[i].tail, tailLen, row[i])
	}
	nv.nrows++
	if nv.nrows-nv.sealed == ChunkRows {
		// Seal: the full tails become immutable chunks. In-place append
		// into a shared chunks backing array is safe — published versions
		// only read their own (shorter) length.
		for i := range nv.cols {
			cd := &nv.cols[i]
			cd.chunks = append(cd.chunks, cd.tail[:ChunkRows:ChunkRows])
			cd.tail = nil
		}
		nv.sealed += ChunkRows
		mChunkSeals.Inc()
	}
	rowID := v.nrows
	t.publish(nv, func() {
		for _, idx := range t.indexes {
			if key, ok := indexKeyOf(idx, nv, rowID); ok {
				idx.Add(rowID, key)
			}
		}
	})
	t.notify(Op{Kind: OpInsert, Table: t.name})
	return nil
}

// Get returns a copy of row i (a physical row ID). Tombstoned rows are
// an error.
func (t *Table) Get(i int) (Row, error) {
	v := t.snap.Load()
	if i < 0 || i >= v.nrows {
		return nil, fmt.Errorf("storage: row %d out of range [0,%d)", i, v.nrows)
	}
	if v.isDead(i) {
		return nil, fmt.Errorf("storage: row %d is deleted", i)
	}
	row := make(Row, v.schema.Len())
	v.materializeRow(i, row, len(row))
	return row, nil
}

// Set overwrites the value at (row, col) after coercion. The write
// copies exactly one column chunk (or tail); every other chunk is
// shared with the previous version.
func (t *Table) Set(row, col int, val Value) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	v := t.snap.Load()
	if row < 0 || row >= v.nrows {
		return fmt.Errorf("storage: row %d out of range [0,%d)", row, v.nrows)
	}
	if col < 0 || col >= v.schema.Len() {
		return fmt.Errorf("storage: column %d out of range [0,%d)", col, v.schema.Len())
	}
	if v.isDead(row) {
		return fmt.Errorf("storage: row %d is deleted", row)
	}
	cv, err := val.Coerce(v.schema.Column(col).Kind)
	if err != nil {
		return err
	}
	if err := t.logOp(Op{Kind: OpSet, Table: t.name, Row: row, Col: col, Values: []Value{cv}}); err != nil {
		return err
	}
	nv := v.clone()
	cd := &nv.cols[col]
	if row >= v.sealed {
		tailLen := v.nrows - v.sealed
		nt := make([]Value, tailLen)
		copy(nt, cd.tail) // nil tail → prefix stays NULL
		nt[row-v.sealed] = cv
		cd.tail = nt
	} else {
		ci := row / ChunkRows
		nc := make([]Value, ChunkRows)
		if cd.chunks[ci] != nil {
			copy(nc, cd.chunks[ci])
		}
		nc[row%ChunkRows] = cv
		chunks := make([][]Value, len(cd.chunks))
		copy(chunks, cd.chunks)
		chunks[ci] = nc
		cd.chunks = chunks
	}
	colName := v.schema.Column(col).Name
	t.publish(nv, func() {
		for _, idx := range t.indexesOn(colName) {
			oldKey, oldOK := indexKeyOf(idx, v, row)
			newKey, newOK := indexKeyOf(idx, nv, row)
			switch {
			case oldOK && newOK:
				idx.Replace(row, oldKey, newKey)
			case oldOK:
				idx.Remove(row, oldKey)
			case newOK:
				idx.Add(row, newKey)
			}
		}
	})
	t.notify(Op{Kind: OpSet, Table: t.name})
	return nil
}

// Value returns the value at (row, col); row is a physical row ID.
func (t *Table) Value(row, col int) (Value, error) {
	v := t.snap.Load()
	if row < 0 || row >= v.nrows {
		return Null(), fmt.Errorf("storage: row %d out of range [0,%d)", row, v.nrows)
	}
	if col < 0 || col >= v.schema.Len() {
		return Null(), fmt.Errorf("storage: column %d out of range [0,%d)", col, v.schema.Len())
	}
	if v.isDead(row) {
		return Null(), fmt.Errorf("storage: row %d is deleted", row)
	}
	return v.value(row, col), nil
}

// AddColumn appends a new column (schema expansion). Every existing row
// receives NULL for it — represented as nil chunks, so the column costs
// nothing until filled. Returns the new column's index.
func (t *Table) AddColumn(c Column) (int, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	v := t.snap.Load()
	// Validate before logging so the journal never records a rejected op.
	if err := v.schema.validate(c); err != nil {
		return 0, err
	}
	if err := t.logOp(Op{Kind: OpAddColumn, Table: t.name, Column: &c}); err != nil {
		return 0, err
	}
	nv := v.clone()
	nv.schema = v.schema.cloneWith(c)
	nv.cols = append(nv.cols, colData{chunks: make([][]Value, v.sealed/ChunkRows)})
	t.publish(nv, nil)
	t.notify(Op{Kind: OpAddColumn, Table: t.name})
	return nv.schema.Len() - 1, nil
}

// FillColumn assigns vals (one per live row, in scan order) to the named
// column. It is the bulk write path used by expansion strategies after a
// classifier has produced values for every tuple. The column is rebuilt
// into fresh chunks in one commit; snapshots pinned before the fill keep
// reading the old chunks untouched.
func (t *Table) FillColumn(name string, vals []Value) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	v := t.snap.Load()
	col, ok := v.schema.Lookup(name)
	if !ok {
		return fmt.Errorf("storage: table %s has no column %q", t.name, name)
	}
	if len(vals) != v.live() {
		return fmt.Errorf("storage: FillColumn %s: %d values for %d rows", name, len(vals), v.live())
	}
	kind := v.schema.Column(col).Kind
	coerced := make([]Value, len(vals))
	for i, val := range vals {
		cv, err := val.Coerce(kind)
		if err != nil {
			return fmt.Errorf("storage: FillColumn %s row %d: %w", name, i, err)
		}
		coerced[i] = cv
	}
	if err := t.logOp(Op{Kind: OpFillColumn, Table: t.name, Name: name, Values: coerced}); err != nil {
		return err
	}
	// Spread live-ordered values over physical positions; tombstoned rows
	// stay NULL.
	phys := make([]Value, v.nrows)
	li := 0
	for i := 0; i < v.nrows; i++ {
		if v.isDead(i) {
			continue
		}
		phys[i] = coerced[li]
		li++
	}
	nv := v.clone()
	nv.cols[col] = buildColData(phys)
	t.publish(nv, func() {
		// Bulk rebuild beats nrows incremental Replace calls — this is
		// the crowd-fill landing path for expanded columns.
		for _, idx := range t.indexesOn(name) {
			t.rebuildIndex(idx, nv)
		}
	})
	t.notify(Op{Kind: OpFillColumn, Table: t.name})
	return nil
}

// ScanFunc is invoked once per live row during Scan with the row's
// physical ID. Returning false stops the scan early. The row must not be
// mutated or retained — the buffer is reused between calls.
type ScanFunc func(rowIdx int, row Row) bool

// Scan iterates over all live rows of the current snapshot, lock-free.
func (t *Table) Scan(f ScanFunc) {
	v := t.snap.Load()
	buf := make(Row, v.schema.Len())
	for i := 0; i < v.nrows; i++ {
		if v.isDead(i) {
			continue
		}
		v.materializeRow(i, buf, len(buf))
		if !f(i, buf) {
			return
		}
	}
}

// Delete tombstones the rows whose physical IDs appear in idx. IDs
// outside the valid range or already deleted are ignored. Index entries
// for the doomed rows are removed point-wise; no data moves, so open
// snapshots and cursors are unaffected. Returns the newly-dead count.
func (t *Table) Delete(idx []int) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(idx) == 0 {
		return 0
	}
	v := t.snap.Load()
	kill := make(map[int]bool, len(idx))
	for _, i := range idx {
		if i >= 0 && i < v.nrows && !v.isDead(i) {
			kill[i] = true
		}
	}
	if len(kill) == 0 {
		return 0
	}
	killed := make([]int, 0, len(kill))
	for i := range kill {
		killed = append(killed, i)
	}
	sort.Ints(killed)
	// Delete's signature cannot surface a journal failure; the durability
	// layer latches it (wal.Err) and reports at the next Snapshot/Close.
	_ = t.logOp(Op{Kind: OpTombstone, Table: t.name, Rows: killed})
	nv := v.clone()
	nv.dead = cloneDead(v.dead, v.nrows)
	for _, i := range killed {
		setDead(nv.dead, i)
	}
	nv.ndead += len(killed)
	t.publish(nv, func() {
		for _, idx := range t.indexes {
			for _, row := range killed {
				if key, ok := indexKeyOf(idx, v, row); ok {
					idx.Remove(row, key)
				}
			}
		}
	})
	t.notify(Op{Kind: OpTombstone, Table: t.name})
	mTombstones.Add(int64(len(killed)))
	return len(killed)
}

// LegacyCompact applies a pre-MVCC OpDelete record: physically remove
// the rows at the given positions and shift everything after them down,
// exactly as the old row store did, so row indices in subsequent legacy
// WAL records keep resolving correctly. Replay-only — it never logs.
func (t *Table) LegacyCompact(idx []int) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(idx) == 0 {
		return 0
	}
	v := t.snap.Load()
	kill := make(map[int]bool, len(idx))
	for _, i := range idx {
		if i >= 0 && i < v.nrows && !v.isDead(i) {
			kill[i] = true
		}
	}
	if len(kill) == 0 {
		return 0
	}
	width := v.schema.Len()
	survivors := make([][]Value, width)
	for i := 0; i < v.nrows; i++ {
		if kill[i] || v.isDead(i) {
			continue
		}
		for c := 0; c < width; c++ {
			survivors[c] = append(survivors[c], v.value(i, c))
		}
	}
	nv := newVersion(v.schema)
	nv.epoch = v.epoch + 1
	if width > 0 {
		nv.nrows = len(survivors[0])
		nv.sealed = nv.nrows / ChunkRows * ChunkRows
		for c := 0; c < width; c++ {
			nv.cols[c] = buildColData(survivors[c])
		}
	}
	t.publish(nv, func() {
		for _, ix := range t.indexes {
			t.rebuildIndex(ix, nv)
		}
	})
	t.notify(Op{Kind: OpDelete, Table: t.name})
	return len(kill)
}

// CaptureState returns every physical row (tombstoned included, so row
// IDs survive a snapshot/restore round trip) plus the sorted list of
// tombstoned IDs. It reads one immutable snapshot — no locks held while
// the caller serializes the result.
func (t *Table) CaptureState() (rows []Row, deleted []int) {
	v := t.snap.Load()
	width := v.schema.Len()
	rows = make([]Row, v.nrows)
	for i := 0; i < v.nrows; i++ {
		r := make(Row, width)
		v.materializeRow(i, r, width)
		rows[i] = r
		if v.isDead(i) {
			deleted = append(deleted, i)
		}
	}
	return rows, deleted
}

// Catalog maps table names to tables, case-insensitively.
type Catalog struct {
	mu       sync.RWMutex
	tables   map[string]*Table
	journal  Journal
	observer Observer
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{tables: make(map[string]*Table)}
}

// Create registers a new table. Duplicate names are an error.
func (c *Catalog) Create(name string, schema *Schema) (*Table, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	key := normName(name)
	if _, dup := c.tables[key]; dup {
		return nil, fmt.Errorf("storage: table %q already exists", name)
	}
	if c.journal != nil {
		if err := c.journal.LogOp(Op{Kind: OpCreateTable, Table: name, Columns: schema.Columns()}); err != nil {
			return nil, err
		}
	}
	t := NewTable(name, schema)
	t.journal = c.journal
	t.observer = c.observer
	c.tables[key] = t
	if c.observer != nil {
		c.observer(Op{Kind: OpCreateTable, Table: name})
	}
	return t, nil
}

// Get returns the named table.
func (c *Catalog) Get(name string) (*Table, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	t, ok := c.tables[normName(name)]
	return t, ok
}

// Drop removes the named table, reporting whether it existed.
func (c *Catalog) Drop(name string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	key := normName(name)
	_, ok := c.tables[key]
	if ok && c.journal != nil {
		// Drop's signature cannot surface a journal failure; see Delete.
		_ = c.journal.LogOp(Op{Kind: OpDropTable, Table: name})
	}
	delete(c.tables, key)
	if ok && c.observer != nil {
		c.observer(Op{Kind: OpDropTable, Table: name})
	}
	return ok
}

// Names returns the sorted list of table names.
func (c *Catalog) Names() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.tables))
	for _, t := range c.tables {
		out = append(out, t.Name())
	}
	sort.Strings(out)
	return out
}
