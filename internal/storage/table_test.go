package storage

import (
	"fmt"
	"sync"
	"testing"
)

func movieSchema(t *testing.T) *Schema {
	t.Helper()
	s, err := NewSchema(
		Column{Name: "movie_id", Kind: KindInt},
		Column{Name: "name", Kind: KindText},
		Column{Name: "year", Kind: KindInt},
	)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSchemaDuplicateAndEmptyNames(t *testing.T) {
	if _, err := NewSchema(Column{Name: "a", Kind: KindInt}, Column{Name: "A", Kind: KindInt}); err == nil {
		t.Fatal("case-insensitive duplicate must fail")
	}
	if _, err := NewSchema(Column{Name: "", Kind: KindInt}); err == nil {
		t.Fatal("empty name must fail")
	}
}

func TestSchemaLookupCaseInsensitive(t *testing.T) {
	s := movieSchema(t)
	i, ok := s.Lookup("NAME")
	if !ok || i != 1 {
		t.Fatalf("Lookup(NAME) = %d, %v", i, ok)
	}
	if _, ok := s.Lookup("missing"); ok {
		t.Fatal("missing column must not resolve")
	}
}

func TestInsertAndGet(t *testing.T) {
	tb := NewTable("movies", movieSchema(t))
	if err := tb.Insert(Int(1), Text("Rocky"), Int(1976)); err != nil {
		t.Fatal(err)
	}
	if err := tb.Insert(Int(1), Text("x")); err == nil {
		t.Fatal("arity mismatch must fail")
	}
	if err := tb.Insert(Text("oops"), Text("x"), Int(1)); err == nil {
		t.Fatal("type mismatch must fail")
	}
	row, err := tb.Get(0)
	if err != nil {
		t.Fatal(err)
	}
	if s, _ := row[1].AsText(); s != "Rocky" {
		t.Fatalf("row = %v", row)
	}
	if _, err := tb.Get(5); err == nil {
		t.Fatal("out-of-range Get must fail")
	}
}

func TestGetReturnsCopy(t *testing.T) {
	tb := NewTable("movies", movieSchema(t))
	if err := tb.Insert(Int(1), Text("Rocky"), Int(1976)); err != nil {
		t.Fatal(err)
	}
	row, _ := tb.Get(0)
	row[1] = Text("Hacked")
	again, _ := tb.Get(0)
	if s, _ := again[1].AsText(); s != "Rocky" {
		t.Fatal("Get must return a defensive copy")
	}
}

func TestInsertCoercesIntToFloat(t *testing.T) {
	s, _ := NewSchema(Column{Name: "score", Kind: KindFloat})
	tb := NewTable("t", s)
	if err := tb.Insert(Int(7)); err != nil {
		t.Fatal(err)
	}
	v, _ := tb.Value(0, 0)
	if v.Kind() != KindFloat {
		t.Fatalf("stored kind = %v, want FLOAT", v.Kind())
	}
}

func TestAddColumnSchemaExpansion(t *testing.T) {
	tb := NewTable("movies", movieSchema(t))
	for i := 0; i < 3; i++ {
		if err := tb.Insert(Int(int64(i)), Text(fmt.Sprintf("m%d", i)), Int(2000+int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	idx, err := tb.AddColumn(Column{Name: "is_comedy", Kind: KindBool, Perceptual: true, Origin: ColumnExpanded})
	if err != nil {
		t.Fatal(err)
	}
	if idx != 3 {
		t.Fatalf("new column index = %d, want 3", idx)
	}
	for i := 0; i < 3; i++ {
		v, err := tb.Value(i, idx)
		if err != nil {
			t.Fatal(err)
		}
		if !v.IsNull() {
			t.Fatalf("row %d: expanded column must start NULL, got %v", i, v)
		}
	}
	// Duplicate expansion must fail.
	if _, err := tb.AddColumn(Column{Name: "IS_COMEDY", Kind: KindBool}); err == nil {
		t.Fatal("duplicate AddColumn must fail")
	}
	// New inserts must now carry 4 values.
	if err := tb.Insert(Int(9), Text("m9"), Int(2009), Bool(true)); err != nil {
		t.Fatal(err)
	}
}

func TestFillColumn(t *testing.T) {
	tb := NewTable("movies", movieSchema(t))
	for i := 0; i < 4; i++ {
		if err := tb.Insert(Int(int64(i)), Text("m"), Int(2000)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := tb.AddColumn(Column{Name: "is_comedy", Kind: KindBool}); err != nil {
		t.Fatal(err)
	}
	vals := []Value{Bool(true), Bool(false), Null(), Bool(true)}
	if err := tb.FillColumn("is_comedy", vals); err != nil {
		t.Fatal(err)
	}
	v, _ := tb.Value(2, 3)
	if !v.IsNull() {
		t.Fatal("NULL fill must remain NULL")
	}
	v, _ = tb.Value(3, 3)
	if b, _ := v.AsBool(); !b {
		t.Fatal("fill value lost")
	}
	if err := tb.FillColumn("is_comedy", vals[:2]); err == nil {
		t.Fatal("length mismatch must fail")
	}
	if err := tb.FillColumn("nope", vals); err == nil {
		t.Fatal("unknown column must fail")
	}
	if err := tb.FillColumn("is_comedy", []Value{Text("x"), Null(), Null(), Null()}); err == nil {
		t.Fatal("uncoercible fill must fail")
	}
}

func TestScanEarlyStop(t *testing.T) {
	tb := NewTable("movies", movieSchema(t))
	for i := 0; i < 10; i++ {
		if err := tb.Insert(Int(int64(i)), Text("m"), Int(2000)); err != nil {
			t.Fatal(err)
		}
	}
	seen := 0
	tb.Scan(func(i int, r Row) bool {
		seen++
		return seen < 4
	})
	if seen != 4 {
		t.Fatalf("scan visited %d rows, want 4", seen)
	}
}

func TestDelete(t *testing.T) {
	tb := NewTable("movies", movieSchema(t))
	for i := 0; i < 5; i++ {
		if err := tb.Insert(Int(int64(i)), Text("m"), Int(2000)); err != nil {
			t.Fatal(err)
		}
	}
	n := tb.Delete([]int{1, 3, 99, -2, 3})
	if n != 2 {
		t.Fatalf("Delete removed %d, want 2", n)
	}
	if tb.NumRows() != 3 {
		t.Fatalf("NumRows = %d, want 3", tb.NumRows())
	}
	ids := []int64{}
	tb.Scan(func(_ int, r Row) bool {
		id, _ := r[0].AsInt()
		ids = append(ids, id)
		return true
	})
	want := []int64{0, 2, 4}
	for i, id := range ids {
		if id != want[i] {
			t.Fatalf("remaining ids = %v, want %v", ids, want)
		}
	}
	if n := tb.Delete(nil); n != 0 {
		t.Fatalf("empty delete removed %d", n)
	}
}

func TestSetAndValueBounds(t *testing.T) {
	tb := NewTable("movies", movieSchema(t))
	if err := tb.Insert(Int(1), Text("a"), Int(2000)); err != nil {
		t.Fatal(err)
	}
	if err := tb.Set(0, 1, Text("b")); err != nil {
		t.Fatal(err)
	}
	v, _ := tb.Value(0, 1)
	if s, _ := v.AsText(); s != "b" {
		t.Fatal("Set lost")
	}
	if err := tb.Set(9, 0, Int(1)); err == nil {
		t.Fatal("row out of range must fail")
	}
	if err := tb.Set(0, 9, Int(1)); err == nil {
		t.Fatal("col out of range must fail")
	}
	if err := tb.Set(0, 0, Text("x")); err == nil {
		t.Fatal("bad type Set must fail")
	}
	if _, err := tb.Value(0, 9); err == nil {
		t.Fatal("Value col out of range must fail")
	}
}

func TestCatalog(t *testing.T) {
	c := NewCatalog()
	if _, err := c.Create("movies", movieSchema(t)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Create("MOVIES", movieSchema(t)); err == nil {
		t.Fatal("duplicate table must fail")
	}
	if _, ok := c.Get("Movies"); !ok {
		t.Fatal("case-insensitive Get failed")
	}
	if _, err := c.Create("users", movieSchema(t)); err != nil {
		t.Fatal(err)
	}
	names := c.Names()
	if len(names) != 2 || names[0] != "movies" || names[1] != "users" {
		t.Fatalf("Names = %v", names)
	}
	if !c.Drop("USERS") {
		t.Fatal("Drop existing returned false")
	}
	if c.Drop("users") {
		t.Fatal("Drop missing returned true")
	}
}

// Concurrent reads and column fills must not race (run with -race).
func TestConcurrentScanAndFill(t *testing.T) {
	tb := NewTable("movies", movieSchema(t))
	for i := 0; i < 100; i++ {
		if err := tb.Insert(Int(int64(i)), Text("m"), Int(2000)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := tb.AddColumn(Column{Name: "flag", Kind: KindBool}); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(2)
		go func() {
			defer wg.Done()
			for k := 0; k < 20; k++ {
				tb.Scan(func(_ int, r Row) bool { return true })
			}
		}()
		go func() {
			defer wg.Done()
			vals := make([]Value, 100)
			for i := range vals {
				vals[i] = Bool(i%2 == 0)
			}
			for k := 0; k < 20; k++ {
				if err := tb.FillColumn("flag", vals); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
}
