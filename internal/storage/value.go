// Package storage implements the typed relational storage substrate of the
// crowd-enabled database: values, schemas, row-oriented tables, and a
// catalog. It supports the one operation ordinary engines forbid and this
// paper requires: adding a column to a live table at query time
// (schema expansion), with the new column initially full of NULLs that a
// crowd or perceptual-space strategy then fills in.
package storage

import (
	"fmt"
	"strconv"
)

// Kind enumerates the value types supported by the engine.
type Kind uint8

const (
	KindNull Kind = iota
	KindBool
	KindInt
	KindFloat
	KindText
)

// String returns the SQL-ish name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindBool:
		return "BOOLEAN"
	case KindInt:
		return "INTEGER"
	case KindFloat:
		return "FLOAT"
	case KindText:
		return "TEXT"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Value is a dynamically typed SQL value. The zero Value is NULL.
//
// NULL is used both for ordinary missing data and for "not yet elicited"
// perceptual attributes; the schema-expansion machinery in internal/core
// distinguishes the two via column metadata, not via the value itself.
type Value struct {
	kind Kind
	b    bool
	i    int64
	f    float64
	s    string
}

// Null returns the NULL value.
func Null() Value { return Value{} }

// Bool wraps a boolean.
func Bool(v bool) Value { return Value{kind: KindBool, b: v} }

// Int wraps an integer.
func Int(v int64) Value { return Value{kind: KindInt, i: v} }

// Float wraps a float.
func Float(v float64) Value { return Value{kind: KindFloat, f: v} }

// Text wraps a string.
func Text(v string) Value { return Value{kind: KindText, s: v} }

// Kind reports the value's type.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether the value is NULL.
func (v Value) IsNull() bool { return v.kind == KindNull }

// AsBool returns the boolean payload; ok is false if the value is not a
// boolean.
func (v Value) AsBool() (val, ok bool) { return v.b, v.kind == KindBool }

// AsInt returns the integer payload, converting from float when lossless.
func (v Value) AsInt() (int64, bool) {
	switch v.kind {
	case KindInt:
		return v.i, true
	case KindFloat:
		i := int64(v.f)
		if float64(i) == v.f {
			return i, true
		}
	}
	return 0, false
}

// AsFloat returns the numeric payload as float64 (ints convert).
func (v Value) AsFloat() (float64, bool) {
	switch v.kind {
	case KindInt:
		return float64(v.i), true
	case KindFloat:
		return v.f, true
	}
	return 0, false
}

// AsText returns the string payload; ok is false for non-text values.
func (v Value) AsText() (string, bool) { return v.s, v.kind == KindText }

// String renders the value the way the REPL prints it.
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return "NULL"
	case KindBool:
		if v.b {
			return "true"
		}
		return "false"
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindText:
		return v.s
	default:
		return "?"
	}
}

// Equal reports SQL equality between two values. NULL never equals
// anything, including NULL (three-valued logic is handled by the caller;
// Equal is only called on non-NULL operands by the engine, but is defensive
// anyway). Numeric values compare across int/float.
func (v Value) Equal(o Value) bool {
	if v.kind == KindNull || o.kind == KindNull {
		return false
	}
	if v.kind == KindBool || o.kind == KindBool {
		vb, ok1 := v.AsBool()
		ob, ok2 := o.AsBool()
		return ok1 && ok2 && vb == ob
	}
	if v.kind == KindText || o.kind == KindText {
		vs, ok1 := v.AsText()
		os, ok2 := o.AsText()
		return ok1 && ok2 && vs == os
	}
	vf, ok1 := v.AsFloat()
	of, ok2 := o.AsFloat()
	return ok1 && ok2 && vf == of
}

// Compare orders two non-NULL values of compatible types: -1, 0, +1.
// It returns an error for incomparable kinds (e.g. TEXT vs INT), matching
// the engine's strict typing of comparison predicates.
func (v Value) Compare(o Value) (int, error) {
	if v.kind == KindNull || o.kind == KindNull {
		return 0, fmt.Errorf("storage: cannot compare NULL values")
	}
	switch {
	case v.kind == KindText && o.kind == KindText:
		vs, os := v.s, o.s
		switch {
		case vs < os:
			return -1, nil
		case vs > os:
			return 1, nil
		}
		return 0, nil
	case v.kind == KindBool || o.kind == KindBool:
		vb, ok1 := v.AsBool()
		ob, ok2 := o.AsBool()
		if !ok1 || !ok2 {
			return 0, fmt.Errorf("storage: cannot compare %s with %s", v.kind, o.kind)
		}
		bi := func(b bool) int {
			if b {
				return 1
			}
			return 0
		}
		return bi(vb) - bi(ob), nil
	default:
		vf, ok1 := v.AsFloat()
		of, ok2 := o.AsFloat()
		if !ok1 || !ok2 {
			return 0, fmt.Errorf("storage: cannot compare %s with %s", v.kind, o.kind)
		}
		switch {
		case vf < of:
			return -1, nil
		case vf > of:
			return 1, nil
		}
		return 0, nil
	}
}

// CoercibleTo reports whether the value can be stored in a column of kind k
// without information loss. NULL is storable everywhere.
func (v Value) CoercibleTo(k Kind) bool {
	if v.kind == KindNull {
		return true
	}
	switch k {
	case KindBool:
		return v.kind == KindBool
	case KindInt:
		_, ok := v.AsInt()
		return ok
	case KindFloat:
		_, ok := v.AsFloat()
		return ok
	case KindText:
		return v.kind == KindText
	default:
		return false
	}
}

// Coerce converts the value to kind k (see CoercibleTo). It returns an
// error when the conversion is not allowed.
func (v Value) Coerce(k Kind) (Value, error) {
	if v.kind == KindNull {
		return Null(), nil
	}
	switch k {
	case KindBool:
		if b, ok := v.AsBool(); ok {
			return Bool(b), nil
		}
	case KindInt:
		if i, ok := v.AsInt(); ok {
			return Int(i), nil
		}
	case KindFloat:
		if f, ok := v.AsFloat(); ok {
			return Float(f), nil
		}
	case KindText:
		if s, ok := v.AsText(); ok {
			return Text(s), nil
		}
	}
	return Null(), fmt.Errorf("storage: cannot coerce %s value %q to %s", v.kind, v.String(), k)
}
