package storage

import (
	"testing"
	"testing/quick"
)

func TestValueConstructorsAndAccessors(t *testing.T) {
	if !Null().IsNull() {
		t.Fatal("Null().IsNull() = false")
	}
	if v, ok := Bool(true).AsBool(); !ok || !v {
		t.Fatal("Bool round-trip failed")
	}
	if v, ok := Int(-7).AsInt(); !ok || v != -7 {
		t.Fatal("Int round-trip failed")
	}
	if v, ok := Float(2.5).AsFloat(); !ok || v != 2.5 {
		t.Fatal("Float round-trip failed")
	}
	if v, ok := Text("hi").AsText(); !ok || v != "hi" {
		t.Fatal("Text round-trip failed")
	}
}

func TestNumericCrossConversion(t *testing.T) {
	if f, ok := Int(3).AsFloat(); !ok || f != 3.0 {
		t.Fatal("Int→Float failed")
	}
	if i, ok := Float(4.0).AsInt(); !ok || i != 4 {
		t.Fatal("lossless Float→Int failed")
	}
	if _, ok := Float(4.5).AsInt(); ok {
		t.Fatal("lossy Float→Int must fail")
	}
	if _, ok := Text("3").AsInt(); ok {
		t.Fatal("Text→Int must fail")
	}
}

func TestValueString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Null(), "NULL"},
		{Bool(true), "true"},
		{Bool(false), "false"},
		{Int(42), "42"},
		{Float(2.5), "2.5"},
		{Text("abc"), "abc"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestEqual(t *testing.T) {
	if Null().Equal(Null()) {
		t.Fatal("NULL must not equal NULL")
	}
	if !Int(3).Equal(Float(3)) {
		t.Fatal("3 must equal 3.0")
	}
	if Int(3).Equal(Text("3")) {
		t.Fatal("3 must not equal '3'")
	}
	if !Text("a").Equal(Text("a")) || Text("a").Equal(Text("b")) {
		t.Fatal("text equality broken")
	}
	if !Bool(true).Equal(Bool(true)) || Bool(true).Equal(Bool(false)) {
		t.Fatal("bool equality broken")
	}
	if Bool(true).Equal(Int(1)) {
		t.Fatal("bool must not equal int")
	}
}

func TestCompare(t *testing.T) {
	if c, err := Int(1).Compare(Float(2)); err != nil || c != -1 {
		t.Fatalf("1 vs 2.0: %d, %v", c, err)
	}
	if c, err := Text("b").Compare(Text("a")); err != nil || c != 1 {
		t.Fatalf("b vs a: %d, %v", c, err)
	}
	if c, err := Text("x").Compare(Text("x")); err != nil || c != 0 {
		t.Fatalf("x vs x: %d, %v", c, err)
	}
	if c, err := Bool(true).Compare(Bool(false)); err != nil || c != 1 {
		t.Fatalf("true vs false: %d, %v", c, err)
	}
	if _, err := Text("a").Compare(Int(1)); err == nil {
		t.Fatal("text vs int must error")
	}
	if _, err := Null().Compare(Int(1)); err == nil {
		t.Fatal("NULL compare must error")
	}
	if _, err := Bool(true).Compare(Int(1)); err == nil {
		t.Fatal("bool vs int must error")
	}
}

func TestCoerce(t *testing.T) {
	v, err := Int(5).Coerce(KindFloat)
	if err != nil {
		t.Fatal(err)
	}
	if f, _ := v.AsFloat(); f != 5 || v.Kind() != KindFloat {
		t.Fatalf("coerced value = %v", v)
	}
	if _, err := Text("x").Coerce(KindInt); err == nil {
		t.Fatal("text→int coercion must fail")
	}
	n, err := Null().Coerce(KindBool)
	if err != nil || !n.IsNull() {
		t.Fatal("NULL must coerce to NULL for any kind")
	}
	if !Float(3.0).CoercibleTo(KindInt) || Float(3.5).CoercibleTo(KindInt) {
		t.Fatal("CoercibleTo float→int rules broken")
	}
}

// Property: Compare is antisymmetric for comparable numeric pairs.
func TestCompareAntisymmetryProperty(t *testing.T) {
	f := func(a, b int32) bool {
		x, y := Int(int64(a)), Int(int64(b))
		c1, err1 := x.Compare(y)
		c2, err2 := y.Compare(x)
		return err1 == nil && err2 == nil && c1 == -c2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Equal is consistent with Compare == 0 for numerics.
func TestEqualCompareConsistencyProperty(t *testing.T) {
	f := func(a, b int16) bool {
		x, y := Int(int64(a)), Float(float64(b))
		c, err := x.Compare(y)
		if err != nil {
			return false
		}
		return (c == 0) == x.Equal(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
