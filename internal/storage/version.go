package storage

import (
	"fmt"
	"math/bits"
	"sort"
)

// MVCC columnar layout (see DESIGN.md §15).
//
// A table's data lives in an immutable *version: per-column sealed chunks
// of exactly ChunkRows values plus an append-only tail, a tombstone
// bitmap over physical row IDs, and a monotonically increasing epoch.
// Writers (serialized by Table.mu) build a new version — copying only
// what they change — and publish it with one atomic pointer store.
// Readers load the pointer once and then scan with zero locks: nothing a
// published version references is ever mutated at an index a reader can
// see.
//
// Two copy disciplines keep writes cheap:
//
//   - The tail uses the published-length trick: the backing array is
//     shared across versions and appends write past every published
//     version's nrows, so an Insert extends the tail in place (amortized
//     by capacity doubling up to ChunkRows). A reader of version v only
//     indexes below v's row count, so it can never observe the write.
//   - Set copies exactly one column's chunk (or tail) — ChunkRows values
//     — plus the chunk-header slice; every other column and chunk is
//     shared with the previous version.
//
// Physical row IDs are stable for the life of a table: Delete sets
// tombstone bits (copy-on-write bitmap) instead of compacting, so open
// snapshots, index entries, and in-flight cursors never see IDs shift.

// ChunkRows is the fixed row capacity of a sealed column chunk. It
// matches the morsel size of the parallel executor, so one morsel reads
// whole chunks.
const ChunkRows = 4096

// colData holds one column's values: sealed immutable chunks (a nil
// chunk is all-NULL, the unfilled-expansion representation) and the
// shared-backing tail. The valid tail prefix of a version is
// version.nrows - version.sealed.
type colData struct {
	chunks [][]Value
	tail   []Value
}

// version is one immutable snapshot of a table's data.
type version struct {
	schema *Schema
	cols   []colData
	nrows  int // physical rows (live + tombstoned)
	sealed int // rows covered by sealed chunks (multiple of ChunkRows)
	dead   []uint64
	ndead  int
	epoch  uint64
}

func newVersion(schema *Schema) *version {
	return &version{schema: schema, cols: make([]colData, schema.Len())}
}

// clone returns a shallow working copy for the next commit: shared
// chunks/tail/dead, fresh cols header slice, epoch bumped.
func (v *version) clone() *version {
	nv := &version{
		schema: v.schema,
		cols:   make([]colData, len(v.cols)),
		nrows:  v.nrows,
		sealed: v.sealed,
		dead:   v.dead,
		ndead:  v.ndead,
		epoch:  v.epoch + 1,
	}
	copy(nv.cols, v.cols)
	return nv
}

func (v *version) live() int { return v.nrows - v.ndead }

func (v *version) isDead(row int) bool {
	// Rows inserted after the last Delete lie beyond the bitmap: alive.
	w := row >> 6
	return w < len(v.dead) && v.dead[w]&(1<<(uint(row)&63)) != 0
}

// value reads (row, col) with no bounds checks beyond the chunk lookup;
// callers validate row < v.nrows.
func (v *version) value(row, col int) Value {
	cd := &v.cols[col]
	if row >= v.sealed {
		t := cd.tail
		if t == nil {
			return Null()
		}
		return t[row-v.sealed]
	}
	ch := cd.chunks[row/ChunkRows]
	if ch == nil {
		return Null()
	}
	return ch[row%ChunkRows]
}

// window returns the contiguous value slice backing physical rows
// [lo, hi) of col, which must not cross a chunk boundary. A nil slice
// means every value in the window is NULL. A short chunk (torn by
// corruption) is reported as an error with the offending row position —
// cursors surface it through Err instead of silently ending the scan.
func (v *version) window(col, lo, hi int) ([]Value, error) {
	cd := &v.cols[col]
	if lo >= v.sealed {
		if cd.tail == nil {
			return nil, nil
		}
		if len(cd.tail) < hi-v.sealed {
			return nil, fmt.Errorf("torn tail at row %d: column %q has %d of %d tail values",
				v.sealed+len(cd.tail), v.schema.Column(col).Name, len(cd.tail), hi-v.sealed)
		}
		return cd.tail[lo-v.sealed : hi-v.sealed], nil
	}
	ch := cd.chunks[lo/ChunkRows]
	if ch == nil {
		return nil, nil
	}
	base := lo / ChunkRows * ChunkRows
	if len(ch) < hi-base {
		return nil, fmt.Errorf("torn chunk %d at row %d: column %q has %d of %d values",
			lo/ChunkRows, base+len(ch), v.schema.Column(col).Name, len(ch), hi-base)
	}
	return ch[lo-base : hi-base], nil
}

// materializeRow copies physical row `row` into dst (len >= width).
func (v *version) materializeRow(row int, dst []Value, width int) {
	for c := 0; c < width; c++ {
		dst[c] = v.value(row, c)
	}
}

// appendTail extends tail (published length n) with val, writing in
// place when capacity allows — safe because no published version indexes
// past its own length — and reallocating with doubling (capped at
// ChunkRows) otherwise.
func appendTail(tail []Value, n int, val Value) []Value {
	if cap(tail) > n {
		t2 := tail[:n+1]
		t2[n] = val
		return t2
	}
	newCap := 2 * n
	if newCap < 64 {
		newCap = 64
	}
	if newCap > ChunkRows {
		newCap = ChunkRows
	}
	if newCap < n+1 {
		newCap = n + 1
	}
	nt := make([]Value, n, newCap)
	copy(nt, tail) // missing prefix (nil tail of an expanded column) stays NULL
	return append(nt, val)
}

// buildColData re-chunks a full column of nrows values — the FillColumn
// and compaction path.
func buildColData(vals []Value) colData {
	var cd colData
	n := len(vals)
	sealed := n / ChunkRows * ChunkRows
	for lo := 0; lo < sealed; lo += ChunkRows {
		ch := make([]Value, ChunkRows)
		copy(ch, vals[lo:lo+ChunkRows])
		cd.chunks = append(cd.chunks, ch)
	}
	if n > sealed {
		tail := make([]Value, n-sealed)
		copy(tail, vals[sealed:])
		cd.tail = tail
	}
	return cd
}

// --- tombstone bitmap helpers ---

func setDead(dead []uint64, row int) { dead[row>>6] |= 1 << (uint(row) & 63) }

// cloneDead copies the bitmap, growing it to cover nrows.
func cloneDead(dead []uint64, nrows int) []uint64 {
	words := (nrows + 63) / 64
	out := make([]uint64, words)
	copy(out, dead)
	return out
}

// --- snapshot pinning ---

// Snap is a pinned read snapshot of a table: the version it references
// is immutable, so every read through it is lock-free and repeatable.
// The pin itself is bookkeeping — memory reclamation is the garbage
// collector's job once no snapshot references a chunk — but the epoch
// registry it feeds (LiveSnapshotEpochs) makes reader lifetimes
// observable, and tests assert on it.
//
// Release is idempotent; cursors release their snapshot automatically
// when the scan is exhausted or closed.
type Snap struct {
	t        *Table
	v        *version
	released bool
}

// Pin captures the table's current snapshot. The caller must Release it.
func (t *Table) Pin() *Snap {
	t.pinMu.Lock()
	defer t.pinMu.Unlock()
	v := t.snap.Load()
	if t.pins == nil {
		t.pins = map[uint64]int{}
	}
	t.pins[v.epoch]++
	mSnapshotPins.Inc()
	return &Snap{t: t, v: v}
}

// pinLocked pins the current snapshot; the caller holds t.idxMu (read or
// write), coupling the pinned version to the index state read in the
// same critical section.
func (t *Table) pinLocked() *Snap { return t.Pin() }

// Release unpins the snapshot. Safe to call more than once.
func (s *Snap) Release() {
	if s == nil || s.released {
		return
	}
	s.released = true
	t := s.t
	t.pinMu.Lock()
	defer t.pinMu.Unlock()
	if n := t.pins[s.v.epoch]; n <= 1 {
		delete(t.pins, s.v.epoch)
	} else {
		t.pins[s.v.epoch] = n - 1
	}
	mSnapshotPins.Dec()
}

// NumRows returns the snapshot's physical row count (tombstoned rows
// included) — the partitioning domain for morsel-parallel scans.
func (s *Snap) NumRows() int { return s.v.nrows }

// Epoch returns the snapshot's version epoch.
func (s *Snap) Epoch() uint64 { return s.v.epoch }

// LiveSnapshotEpochs returns the distinct epochs currently pinned by
// open snapshots, ascending — exposed for observability (/schema).
func (t *Table) LiveSnapshotEpochs() []uint64 {
	t.pinMu.Lock()
	defer t.pinMu.Unlock()
	out := make([]uint64, 0, len(t.pins))
	for e := range t.pins {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ChunkCount returns the number of column chunks of the current version:
// sealed chunks plus one partial tail chunk when rows are unsealed.
func (t *Table) ChunkCount() int {
	v := t.snap.Load()
	n := v.sealed / ChunkRows
	if v.nrows > v.sealed {
		n++
	}
	return n
}

// Tombstones returns the number of tombstoned (deleted) physical rows in
// the current version.
func (t *Table) Tombstones() int { return t.snap.Load().ndead }

// --- vectorized predicates ---

// PredOp enumerates the vectorizable comparison operators. The semantics
// mirror the engine's EvalPredicate exactly: a NULL column value makes
// every comparison UNKNOWN (excluded), equality uses Value.Equal, and
// ordering uses Value.Compare — which the planner only vectorizes for
// class-compatible literals, so Compare cannot fail here.
type PredOp uint8

const (
	PredEq PredOp = iota
	PredNe
	PredLt
	PredLe
	PredGt
	PredGe
	PredIsNull
	PredNotNull
)

// Pred is one vectorizable predicate: column Col compared against Val.
// Cursors evaluate Preds chunk-at-a-time into a selection bitmap,
// replacing per-row filter closures on the scan hot path.
type Pred struct {
	Col int
	Op  PredOp
	Val Value
}

// evalPredWindow clears sel bits (bit i ↔ row base+i) for rows of the
// contiguous window vals that fail p. A nil window is all-NULL: only
// IS NULL keeps any bits.
func evalPredWindow(p Pred, vals []Value, n int, sel []uint64) {
	if vals == nil {
		if p.Op == PredIsNull {
			return // NULL satisfies IS NULL; bits stay
		}
		for i := range sel {
			sel[i] = 0
		}
		return
	}
	// Numeric literals take a call-free sweep: the generic path pays a
	// non-inlined Value.Compare per row, which costs as much as the
	// closure it replaced. PredNe must stay generic — against a
	// mismatched value class != is TRUE (e.g. 'abc' != 5), while the
	// sweep excludes everything non-numeric.
	if f, ok := p.Val.AsFloat(); ok && p.Op != PredNe && p.Op != PredIsNull && p.Op != PredNotNull {
		evalNumericWindow(p.Op, f, vals, n, sel)
		return
	}
	for wi := range sel {
		w := sel[wi]
		if w == 0 {
			continue
		}
		base := wi << 6
		for w != 0 {
			b := w & (-w)
			w &^= b
			i := base + bits.TrailingZeros64(b)
			if i >= n {
				break
			}
			if !predMatch(p, vals[i]) {
				sel[wi] &^= b
			}
		}
	}
}

// evalNumericWindow is the hot sweep for comparisons against a numeric
// literal — the overwhelmingly common pushed-down predicate. It builds
// each selection word branch-light with the comparison inlined (no
// predMatch/Compare calls) and ANDs it in, so bits cleared by earlier
// predicates or tombstones stay cleared. NULLs and non-numeric values
// drop out, matching predMatch: NULL comparisons are UNKNOWN and
// mismatched classes never satisfy =, <, <=, >, >=.
func evalNumericWindow(op PredOp, f float64, vals []Value, n int, sel []uint64) {
	for wi := range sel {
		if sel[wi] == 0 {
			continue
		}
		lo := wi << 6
		hi := lo + 64
		if hi > n {
			hi = n
		}
		var w uint64
		for i := lo; i < hi; i++ {
			v := &vals[i]
			var vf float64
			switch v.kind {
			case KindFloat:
				vf = v.f
			case KindInt:
				vf = float64(v.i)
			default:
				continue
			}
			var keep bool
			switch op {
			case PredEq:
				keep = vf == f
			case PredLt:
				keep = vf < f
			case PredLe:
				keep = vf <= f
			case PredGt:
				keep = vf > f
			case PredGe:
				keep = vf >= f
			}
			if keep {
				w |= 1 << uint(i-lo)
			}
		}
		sel[wi] &= w
	}
}

func predMatch(p Pred, v Value) bool {
	switch p.Op {
	case PredIsNull:
		return v.IsNull()
	case PredNotNull:
		return !v.IsNull()
	}
	if v.IsNull() {
		return false // comparison with NULL is UNKNOWN → excluded
	}
	switch p.Op {
	case PredEq:
		return v.Equal(p.Val)
	case PredNe:
		return !v.Equal(p.Val)
	default:
		c, err := v.Compare(p.Val)
		if err != nil {
			return false // planner guarantees class compatibility; defensive
		}
		switch p.Op {
		case PredLt:
			return c < 0
		case PredLe:
			return c <= 0
		case PredGt:
			return c > 0
		case PredGe:
			return c >= 0
		}
	}
	return false
}

func fillOnes(sel []uint64, n int) {
	for wi := range sel {
		lo := wi << 6
		switch {
		case lo+64 <= n:
			sel[wi] = ^uint64(0)
		case lo >= n:
			sel[wi] = 0
		default:
			sel[wi] = (1 << uint(n-lo)) - 1
		}
	}
}
