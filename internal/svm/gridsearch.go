package svm

import (
	"fmt"
	"math/rand"

	"crowddb/internal/eval"
)

// GridPoint is one hyperparameter combination evaluated by GridSearchSVC.
type GridPoint struct {
	C     float64
	Gamma float64 // 0 means DefaultGamma heuristic
	// GMean is the mean cross-validated g-mean.
	GMean float64
}

// GridSearchSVC evaluates every (C, gamma) combination with k-fold
// cross-validation on (X, y) and returns all points, best first. The paper
// tunes its extractor "by cross-validation on the rating data only"; this
// helper provides the same discipline for the SVM stage.
//
// gammas entries of 0 select the DefaultGamma heuristic. folds is clamped
// to [2, len(X)].
func GridSearchSVC(X [][]float64, y []bool, cs, gammas []float64, folds int, seed int64) ([]GridPoint, error) {
	if len(X) == 0 || len(X) != len(y) {
		return nil, fmt.Errorf("svm: grid search needs matching non-empty X, y")
	}
	if len(cs) == 0 || len(gammas) == 0 {
		return nil, fmt.Errorf("svm: grid search needs at least one C and one gamma")
	}
	if folds < 2 {
		folds = 2
	}
	if folds > len(X) {
		folds = len(X)
	}

	// Stratified fold assignment keeps both classes in every fold.
	rng := rand.New(rand.NewSource(seed))
	var pos, neg []int
	for i, v := range y {
		if v {
			pos = append(pos, i)
		} else {
			neg = append(neg, i)
		}
	}
	if len(pos) < folds || len(neg) < folds {
		return nil, fmt.Errorf("svm: grid search needs at least %d examples per class (have %d/%d)",
			folds, len(pos), len(neg))
	}
	rng.Shuffle(len(pos), func(i, j int) { pos[i], pos[j] = pos[j], pos[i] })
	rng.Shuffle(len(neg), func(i, j int) { neg[i], neg[j] = neg[j], neg[i] })
	foldOf := make([]int, len(X))
	for rank, i := range pos {
		foldOf[i] = rank % folds
	}
	for rank, i := range neg {
		foldOf[i] = rank % folds
	}

	var out []GridPoint
	for _, c := range cs {
		for _, g := range gammas {
			var kernel Kernel
			if g > 0 {
				kernel = RBFKernel{Gamma: g}
			} // nil → DefaultGamma inside TrainSVC
			var sum float64
			n := 0
			for f := 0; f < folds; f++ {
				var trX [][]float64
				var trY []bool
				var teX [][]float64
				var teY []bool
				for i := range X {
					if foldOf[i] == f {
						teX = append(teX, X[i])
						teY = append(teY, y[i])
					} else {
						trX = append(trX, X[i])
						trY = append(trY, y[i])
					}
				}
				model, err := TrainSVC(trX, trY, SVCConfig{Kernel: kernel, C: c, Seed: seed})
				if err != nil {
					continue // degenerate fold (single class): skip
				}
				var conf eval.Confusion
				for i, x := range teX {
					conf.Observe(model.Predict(x), teY[i])
				}
				sum += conf.GMean()
				n++
			}
			gp := GridPoint{C: c, Gamma: g}
			if n > 0 {
				gp.GMean = sum / float64(n)
			}
			out = append(out, gp)
		}
	}
	// Best first; ties broken toward smaller C (more regularization) and
	// then smaller gamma (smoother boundary).
	for i := 1; i < len(out); i++ {
		for j := i; j > 0; j-- {
			a, b := out[j-1], out[j]
			worse := a.GMean < b.GMean ||
				(a.GMean == b.GMean && (a.C > b.C || (a.C == b.C && a.Gamma > b.Gamma)))
			if !worse {
				break
			}
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	return out, nil
}
