package svm

import (
	"math/rand"
	"testing"
)

func TestGridSearchPicksWorkingConfigOnRings(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	X, y := rings(160, rng)
	points, err := GridSearchSVC(X, y,
		[]float64{0.1, 1, 5},
		[]float64{0, 0.01, 1},
		3, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 9 {
		t.Fatalf("points = %d", len(points))
	}
	// Sorted best-first.
	for i := 1; i < len(points); i++ {
		if points[i].GMean > points[i-1].GMean {
			t.Fatal("points not sorted by g-mean")
		}
	}
	// The best configuration must actually solve the rings.
	if points[0].GMean < 0.9 {
		t.Fatalf("best grid point g-mean = %.3f", points[0].GMean)
	}
	// A hopeless configuration must rank below the best (γ=0.01 is far
	// too smooth for unit-scale rings).
	var worst GridPoint
	for _, p := range points {
		if p.C == 0.1 && p.Gamma == 0.01 {
			worst = p
		}
	}
	if worst.GMean >= points[0].GMean {
		t.Fatalf("under-fit config g-mean %.3f should trail best %.3f", worst.GMean, points[0].GMean)
	}
}

func TestGridSearchValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	X, y := twoBlobs(30, 3, rng)
	if _, err := GridSearchSVC(nil, nil, []float64{1}, []float64{0}, 3, 1); err == nil {
		t.Fatal("empty input must fail")
	}
	if _, err := GridSearchSVC(X, y, nil, []float64{0}, 3, 1); err == nil {
		t.Fatal("empty C grid must fail")
	}
	if _, err := GridSearchSVC(X, y, []float64{1}, nil, 3, 1); err == nil {
		t.Fatal("empty gamma grid must fail")
	}
	// Single-class data cannot be stratified.
	ones := make([]bool, len(y))
	for i := range ones {
		ones[i] = true
	}
	if _, err := GridSearchSVC(X, ones, []float64{1}, []float64{0}, 3, 1); err == nil {
		t.Fatal("single-class must fail")
	}
}

func TestGridSearchDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	X, y := twoBlobs(60, 3, rng)
	p1, err := GridSearchSVC(X, y, []float64{1, 2}, []float64{0}, 3, 9)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := GridSearchSVC(X, y, []float64{1, 2}, []float64{0}, 3, 9)
	if err != nil {
		t.Fatal(err)
	}
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatal("grid search must be deterministic per seed")
		}
	}
}

func TestGridSearchFoldClamping(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	X, y := twoBlobs(12, 4, rng)
	// folds > len(X) gets clamped; folds < 2 raised to 2.
	if _, err := GridSearchSVC(X, y, []float64{1}, []float64{0}, 100, 1); err == nil {
		t.Fatal("folds clamp beyond class size must fail (6 per class < 12 folds)")
	}
	points, err := GridSearchSVC(X, y, []float64{1}, []float64{0}, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 1 {
		t.Fatalf("points = %d", len(points))
	}
}
