// Package svm implements support vector machines from scratch:
// a C-SVC binary classifier trained by sequential minimal optimization
// (SMO), an ε-insensitive support vector regression machine (the
// "regression machine" of paper §3.4 for numeric perceptual attributes),
// and a label-switching transductive SVM (TSVM) used to reproduce the
// semi-supervised comparison of paper §5.
//
// The paper extracts attributes from perceptual spaces with an RBF-kernel
// SVM; kernels here are plug-in strategies.
package svm

import (
	"fmt"
	"math"

	"crowddb/internal/vecmath"
)

// Kernel computes a positive-semidefinite similarity between two vectors.
type Kernel interface {
	Eval(a, b []float64) float64
	String() string
}

// LinearKernel is ⟨a, b⟩.
type LinearKernel struct{}

// Eval returns the dot product.
func (LinearKernel) Eval(a, b []float64) float64 { return vecmath.Dot(a, b) }

func (LinearKernel) String() string { return "linear" }

// RBFKernel is exp(−γ‖a−b‖²), the paper's choice for genre extraction.
type RBFKernel struct{ Gamma float64 }

// Eval returns the Gaussian similarity.
func (k RBFKernel) Eval(a, b []float64) float64 {
	return math.Exp(-k.Gamma * vecmath.SqDist(a, b))
}

func (k RBFKernel) String() string { return fmt.Sprintf("rbf(γ=%g)", k.Gamma) }

// PolyKernel is (γ⟨a,b⟩ + coef0)^degree.
type PolyKernel struct {
	Gamma  float64
	Coef0  float64
	Degree int
}

// Eval returns the polynomial similarity.
func (k PolyKernel) Eval(a, b []float64) float64 {
	return math.Pow(k.Gamma*vecmath.Dot(a, b)+k.Coef0, float64(k.Degree))
}

func (k PolyKernel) String() string {
	return fmt.Sprintf("poly(γ=%g, c0=%g, d=%d)", k.Gamma, k.Coef0, k.Degree)
}

// DefaultGamma returns the common 1/(d · Var(X)) heuristic ("scale" in
// scikit-learn), which adapts the RBF width to the data spread. Falls back
// to 1/d for degenerate inputs.
func DefaultGamma(X [][]float64) float64 {
	if len(X) == 0 || len(X[0]) == 0 {
		return 1
	}
	d := len(X[0])
	// Pooled variance over all coordinates.
	var sum, sumSq float64
	n := 0
	for _, x := range X {
		for _, v := range x {
			sum += v
			sumSq += v * v
			n++
		}
	}
	mean := sum / float64(n)
	variance := sumSq/float64(n) - mean*mean
	if variance <= 1e-12 {
		return 1 / float64(d)
	}
	return 1 / (float64(d) * variance)
}

// kernelMatrix precomputes K(i,j) for a training set when it fits in the
// budget; otherwise rows are computed on demand.
type kernelMatrix struct {
	k    Kernel
	x    [][]float64
	full []float32 // n×n when cached, nil otherwise
	n    int
}

// newKernelMatrix caches the full Gram matrix when it needs at most
// maxEntries float32 cells.
func newKernelMatrix(k Kernel, x [][]float64, maxEntries int) *kernelMatrix {
	km := &kernelMatrix{k: k, x: x, n: len(x)}
	if km.n*km.n <= maxEntries {
		km.full = make([]float32, km.n*km.n)
		for i := 0; i < km.n; i++ {
			km.full[i*km.n+i] = float32(k.Eval(x[i], x[i]))
			for j := i + 1; j < km.n; j++ {
				v := float32(k.Eval(x[i], x[j]))
				km.full[i*km.n+j] = v
				km.full[j*km.n+i] = v
			}
		}
	}
	return km
}

func (km *kernelMatrix) at(i, j int) float64 {
	if km.full != nil {
		return float64(km.full[i*km.n+j])
	}
	return km.k.Eval(km.x[i], km.x[j])
}

// rowInto writes K(i, ·) into dst (length n).
func (km *kernelMatrix) rowInto(i int, dst []float64) {
	if km.full != nil {
		base := i * km.n
		for j := 0; j < km.n; j++ {
			dst[j] = float64(km.full[base+j])
		}
		return
	}
	for j := 0; j < km.n; j++ {
		dst[j] = km.k.Eval(km.x[i], km.x[j])
	}
}
