package svm

import (
	"fmt"
	"math"
	"math/rand"
)

// SVCConfig configures the C-SVC trainer.
type SVCConfig struct {
	// Kernel defaults to RBF with DefaultGamma when nil.
	Kernel Kernel
	// C is the soft-margin penalty (default 1).
	C float64
	// Tol is the KKT violation tolerance (default 1e-3).
	Tol float64
	// MaxPasses is how many consecutive full passes without an update end
	// training (default 5).
	MaxPasses int
	// MaxIter caps total passes as a safety valve (default 10_000).
	MaxIter int
	// CacheEntries caps the precomputed Gram matrix size in float32 cells
	// (default 16M ≈ 64 MB); larger problems fall back to on-demand
	// kernel evaluation.
	CacheEntries int
	// Seed drives the SMO's randomized second-index choice.
	Seed int64
	// PerSampleC optionally overrides C per training sample (len must
	// equal the sample count). The transductive SVM uses it to penalize
	// unlabeled examples with a gradually increasing C*.
	PerSampleC []float64
}

func (c *SVCConfig) fillDefaults(X [][]float64) {
	if c.Kernel == nil {
		c.Kernel = RBFKernel{Gamma: DefaultGamma(X)}
	}
	if c.C <= 0 {
		c.C = 1
	}
	if c.Tol <= 0 {
		c.Tol = 1e-3
	}
	if c.MaxPasses <= 0 {
		c.MaxPasses = 5
	}
	if c.MaxIter <= 0 {
		c.MaxIter = 10000
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = 16 << 20
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// SVC is a trained soft-margin kernel classifier.
type SVC struct {
	kernel   Kernel
	supportX [][]float64
	coef     []float64 // α_i · y_i for each support vector
	b        float64
}

// Kernel returns the trained model's kernel.
func (m *SVC) Kernel() Kernel { return m.kernel }

// NumSupport returns the number of support vectors.
func (m *SVC) NumSupport() int { return len(m.supportX) }

// Decision returns the signed distance-like score f(x) = Σ αᵢyᵢ K(xᵢ,x) + b.
func (m *SVC) Decision(x []float64) float64 {
	s := m.b
	for i, sv := range m.supportX {
		s += m.coef[i] * m.kernel.Eval(sv, x)
	}
	return s
}

// Predict classifies x (true = positive class). Points exactly on the
// boundary are labeled negative.
func (m *SVC) Predict(x []float64) bool { return m.Decision(x) > 0 }

// PredictAll classifies a batch.
func (m *SVC) PredictAll(X [][]float64) []bool {
	out := make([]bool, len(X))
	for i, x := range X {
		out[i] = m.Predict(x)
	}
	return out
}

// TrainSVC fits a binary classifier on X with boolean labels using
// sequential minimal optimization (the simplified Platt variant with a
// randomized second working-set index). Both classes must be present.
func TrainSVC(X [][]float64, y []bool, cfg SVCConfig) (*SVC, error) {
	if len(X) == 0 {
		return nil, fmt.Errorf("svm: empty training set")
	}
	if len(X) != len(y) {
		return nil, fmt.Errorf("svm: %d samples but %d labels", len(X), len(y))
	}
	dim := len(X[0])
	pos, neg := 0, 0
	for i, x := range X {
		if len(x) != dim {
			return nil, fmt.Errorf("svm: sample %d has dimension %d, want %d", i, len(x), dim)
		}
		if y[i] {
			pos++
		} else {
			neg++
		}
	}
	if pos == 0 || neg == 0 {
		return nil, fmt.Errorf("svm: training set needs both classes (pos=%d, neg=%d)", pos, neg)
	}
	cfg.fillDefaults(X)

	n := len(X)
	Cs := make([]float64, n)
	if cfg.PerSampleC != nil {
		if len(cfg.PerSampleC) != n {
			return nil, fmt.Errorf("svm: PerSampleC has %d entries for %d samples", len(cfg.PerSampleC), n)
		}
		for i, c := range cfg.PerSampleC {
			if c <= 0 {
				return nil, fmt.Errorf("svm: PerSampleC[%d] = %g must be positive", i, c)
			}
			Cs[i] = c
		}
	} else {
		for i := range Cs {
			Cs[i] = cfg.C
		}
	}
	ys := make([]float64, n)
	for i := range y {
		if y[i] {
			ys[i] = 1
		} else {
			ys[i] = -1
		}
	}
	km := newKernelMatrix(cfg.Kernel, X, cfg.CacheEntries)
	rng := rand.New(rand.NewSource(cfg.Seed))

	alpha := make([]float64, n)
	b := 0.0

	// fvals caches the decision value of every training sample; it is
	// updated incrementally after each successful alpha step, which turns
	// the simplified-SMO inner loop from O(n²) into O(n).
	fvals := make([]float64, n) // all zero: alpha = 0, b = 0
	rowI := make([]float64, n)
	rowJ := make([]float64, n)

	passes, iter := 0, 0
	for passes < cfg.MaxPasses && iter < cfg.MaxIter {
		changed := 0
		for i := 0; i < n; i++ {
			Ei := fvals[i] - ys[i]
			if !((ys[i]*Ei < -cfg.Tol && alpha[i] < Cs[i]) || (ys[i]*Ei > cfg.Tol && alpha[i] > 0)) {
				continue
			}
			// Pick j != i at random (simplified SMO heuristic).
			j := rng.Intn(n - 1)
			if j >= i {
				j++
			}
			Ej := fvals[j] - ys[j]

			ai, aj := alpha[i], alpha[j]
			var L, H float64
			if ys[i] != ys[j] {
				L = math.Max(0, aj-ai)
				H = math.Min(Cs[j], Cs[i]+aj-ai)
			} else {
				L = math.Max(0, ai+aj-Cs[i])
				H = math.Min(Cs[j], ai+aj)
			}
			if L >= H {
				continue
			}
			eta := 2*km.at(i, j) - km.at(i, i) - km.at(j, j)
			if eta >= 0 {
				continue
			}
			ajNew := aj - ys[j]*(Ei-Ej)/eta
			if ajNew > H {
				ajNew = H
			} else if ajNew < L {
				ajNew = L
			}
			if math.Abs(ajNew-aj) < 1e-5 {
				continue
			}
			aiNew := ai + ys[i]*ys[j]*(aj-ajNew)

			b1 := b - Ei - ys[i]*(aiNew-ai)*km.at(i, i) - ys[j]*(ajNew-aj)*km.at(i, j)
			b2 := b - Ej - ys[i]*(aiNew-ai)*km.at(i, j) - ys[j]*(ajNew-aj)*km.at(j, j)
			bOld := b
			switch {
			case aiNew > 0 && aiNew < Cs[i]:
				b = b1
			case ajNew > 0 && ajNew < Cs[j]:
				b = b2
			default:
				b = (b1 + b2) / 2
			}

			km.rowInto(i, rowI)
			km.rowInto(j, rowJ)
			dI := (aiNew - ai) * ys[i]
			dJ := (ajNew - aj) * ys[j]
			dB := b - bOld
			for k := 0; k < n; k++ {
				fvals[k] += dI*rowI[k] + dJ*rowJ[k] + dB
			}

			alpha[i], alpha[j] = aiNew, ajNew
			changed++
		}
		iter++
		if changed == 0 {
			passes++
		} else {
			passes = 0
		}
	}

	model := &SVC{kernel: cfg.Kernel, b: b}
	for i := 0; i < n; i++ {
		if alpha[i] > 1e-9 {
			model.supportX = append(model.supportX, X[i])
			model.coef = append(model.coef, alpha[i]*ys[i])
		}
	}
	if len(model.supportX) == 0 {
		// Degenerate but possible on trivially separable data with tiny C:
		// fall back to a nearest-centroid-style decision via bias only.
		model.b = 0
		if pos >= neg {
			model.b = 1e-9
		} else {
			model.b = -1e-9
		}
	}
	return model, nil
}
