package svm

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// twoBlobs generates a linearly separable 2-class problem.
func twoBlobs(n int, gap float64, rng *rand.Rand) (X [][]float64, y []bool) {
	for i := 0; i < n; i++ {
		pos := i%2 == 0
		cx := -gap / 2
		if pos {
			cx = gap / 2
		}
		X = append(X, []float64{cx + rng.NormFloat64()*0.4, rng.NormFloat64() * 0.4})
		y = append(y, pos)
	}
	return X, y
}

// rings generates a non-linearly-separable problem: class by radius.
func rings(n int, rng *rand.Rand) (X [][]float64, y []bool) {
	for i := 0; i < n; i++ {
		inner := i%2 == 0
		r := 2.5
		if inner {
			r = 0.8
		}
		theta := rng.Float64() * 2 * math.Pi
		rr := r + rng.NormFloat64()*0.15
		X = append(X, []float64{rr * math.Cos(theta), rr * math.Sin(theta)})
		y = append(y, inner)
	}
	return X, y
}

func accuracyOf(m *SVC, X [][]float64, y []bool) float64 {
	correct := 0
	for i, x := range X {
		if m.Predict(x) == y[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(X))
}

func TestKernels(t *testing.T) {
	a := []float64{1, 2}
	b := []float64{3, 4}
	if got := (LinearKernel{}).Eval(a, b); got != 11 {
		t.Fatalf("linear = %v", got)
	}
	rbf := RBFKernel{Gamma: 0.5}
	want := math.Exp(-0.5 * 8) // ‖a−b‖² = 8
	if got := rbf.Eval(a, b); math.Abs(got-want) > 1e-12 {
		t.Fatalf("rbf = %v, want %v", got, want)
	}
	if got := rbf.Eval(a, a); got != 1 {
		t.Fatalf("rbf self-similarity = %v, want 1", got)
	}
	poly := PolyKernel{Gamma: 1, Coef0: 1, Degree: 2}
	if got := poly.Eval(a, b); got != 144 {
		t.Fatalf("poly = %v, want 144", got)
	}
	for _, k := range []Kernel{LinearKernel{}, rbf, poly} {
		if k.String() == "" {
			t.Fatal("kernel String() empty")
		}
	}
}

func TestDefaultGamma(t *testing.T) {
	X := [][]float64{{0, 0}, {1, 1}, {2, 2}}
	g := DefaultGamma(X)
	if g <= 0 {
		t.Fatalf("gamma = %v", g)
	}
	if got := DefaultGamma(nil); got != 1 {
		t.Fatalf("empty gamma = %v", got)
	}
	constant := [][]float64{{5, 5}, {5, 5}}
	if got := DefaultGamma(constant); got != 0.5 {
		t.Fatalf("degenerate gamma = %v, want 1/d", got)
	}
}

func TestKernelMatrixCacheAgreesWithDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	X, _ := twoBlobs(20, 2, rng)
	k := RBFKernel{Gamma: 0.7}
	cached := newKernelMatrix(k, X, 1<<20)
	uncached := newKernelMatrix(k, X, 1) // too small: no cache
	if cached.full == nil || uncached.full != nil {
		t.Fatal("cache decision wrong")
	}
	for i := 0; i < 20; i++ {
		for j := 0; j < 20; j++ {
			a, b := cached.at(i, j), uncached.at(i, j)
			if math.Abs(a-b) > 1e-6 {
				t.Fatalf("K(%d,%d): cached %v vs direct %v", i, j, a, b)
			}
		}
	}
	row := make([]float64, 20)
	cached.rowInto(3, row)
	for j := range row {
		if math.Abs(row[j]-cached.at(3, j)) > 1e-9 {
			t.Fatal("rowInto mismatch")
		}
	}
	uncached.rowInto(3, row)
	for j := range row {
		if math.Abs(row[j]-uncached.at(3, j)) > 1e-9 {
			t.Fatal("uncached rowInto mismatch")
		}
	}
}

func TestSVCLinearlySeparable(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	X, y := twoBlobs(120, 4, rng)
	m, err := TrainSVC(X, y, SVCConfig{Kernel: LinearKernel{}, C: 1})
	if err != nil {
		t.Fatal(err)
	}
	if acc := accuracyOf(m, X, y); acc < 0.98 {
		t.Fatalf("linear accuracy = %v", acc)
	}
	if m.NumSupport() == 0 || m.NumSupport() == len(X) {
		t.Fatalf("support vectors = %d of %d, looks degenerate", m.NumSupport(), len(X))
	}
}

func TestSVCRBFSolvesRings(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	X, y := rings(160, rng)
	// Linear kernel cannot separate rings.
	lin, err := TrainSVC(X, y, SVCConfig{Kernel: LinearKernel{}, C: 1})
	if err != nil {
		t.Fatal(err)
	}
	linAcc := accuracyOf(lin, X, y)
	if linAcc > 0.75 {
		t.Fatalf("linear kernel should fail on rings, got %v", linAcc)
	}
	// RBF separates them.
	rbf, err := TrainSVC(X, y, SVCConfig{C: 5})
	if err != nil {
		t.Fatal(err)
	}
	if acc := accuracyOf(rbf, X, y); acc < 0.95 {
		t.Fatalf("rbf accuracy = %v", acc)
	}
}

func TestSVCGeneralization(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	Xtr, ytr := rings(120, rng)
	Xte, yte := rings(200, rng)
	m, err := TrainSVC(Xtr, ytr, SVCConfig{C: 5})
	if err != nil {
		t.Fatal(err)
	}
	if acc := accuracyOf(m, Xte, yte); acc < 0.92 {
		t.Fatalf("held-out accuracy = %v", acc)
	}
}

func TestSVCNoisyLabelsStillLearn(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	X, y := twoBlobs(200, 4, rng)
	noisy := append([]bool(nil), y...)
	for i := 0; i < len(noisy); i += 10 { // 10% label noise
		noisy[i] = !noisy[i]
	}
	m, err := TrainSVC(X, noisy, SVCConfig{C: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Accuracy vs the CLEAN labels should remain high: the soft margin
	// absorbs the noise.
	if acc := accuracyOf(m, X, y); acc < 0.93 {
		t.Fatalf("accuracy under label noise = %v", acc)
	}
}

func TestSVCInputValidation(t *testing.T) {
	if _, err := TrainSVC(nil, nil, SVCConfig{}); err == nil {
		t.Fatal("empty set must fail")
	}
	X := [][]float64{{1}, {2}}
	if _, err := TrainSVC(X, []bool{true}, SVCConfig{}); err == nil {
		t.Fatal("length mismatch must fail")
	}
	if _, err := TrainSVC(X, []bool{true, true}, SVCConfig{}); err == nil {
		t.Fatal("single-class set must fail")
	}
	ragged := [][]float64{{1, 2}, {3}}
	if _, err := TrainSVC(ragged, []bool{true, false}, SVCConfig{}); err == nil {
		t.Fatal("ragged input must fail")
	}
	if _, err := TrainSVC(X, []bool{true, false}, SVCConfig{PerSampleC: []float64{1}}); err == nil {
		t.Fatal("PerSampleC length mismatch must fail")
	}
	if _, err := TrainSVC(X, []bool{true, false}, SVCConfig{PerSampleC: []float64{1, -1}}); err == nil {
		t.Fatal("negative PerSampleC must fail")
	}
}

func TestSVCDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	X, y := rings(80, rng)
	m1, err := TrainSVC(X, y, SVCConfig{C: 2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	m2, err := TrainSVC(X, y, SVCConfig{C: 2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		x := []float64{rng.NormFloat64() * 2, rng.NormFloat64() * 2}
		if m1.Decision(x) != m2.Decision(x) {
			t.Fatal("same seed must give identical models")
		}
	}
}

func TestSVCPredictAll(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	X, y := twoBlobs(60, 4, rng)
	m, err := TrainSVC(X, y, SVCConfig{Kernel: LinearKernel{}})
	if err != nil {
		t.Fatal(err)
	}
	preds := m.PredictAll(X)
	if len(preds) != len(X) {
		t.Fatal("PredictAll length mismatch")
	}
	for i := range preds {
		if preds[i] != m.Predict(X[i]) {
			t.Fatal("PredictAll disagrees with Predict")
		}
	}
}

// Property: the decision function is symmetric under swapping the two
// classes (label inversion flips the sign, approximately).
func TestSVCLabelInversionProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	X, y := twoBlobs(60, 3, rng)
	inv := make([]bool, len(y))
	for i := range y {
		inv[i] = !y[i]
	}
	m1, err := TrainSVC(X, y, SVCConfig{Kernel: LinearKernel{}, C: 1})
	if err != nil {
		t.Fatal(err)
	}
	m2, err := TrainSVC(X, inv, SVCConfig{Kernel: LinearKernel{}, C: 1})
	if err != nil {
		t.Fatal(err)
	}
	agree := 0
	for i := 0; i < 100; i++ {
		x := []float64{rng.NormFloat64() * 3, rng.NormFloat64() * 3}
		if m1.Predict(x) != m2.Predict(x) {
			agree++
		}
	}
	if agree < 90 {
		t.Fatalf("inverted model should predict the complement, agreement on flip = %d%%", agree)
	}
}

func TestSVRFitsLinearFunction(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	var X [][]float64
	var y []float64
	for i := 0; i < 80; i++ {
		x := rng.Float64()*4 - 2
		X = append(X, []float64{x})
		y = append(y, 2*x+1+rng.NormFloat64()*0.05)
	}
	m, err := TrainSVR(X, y, SVRConfig{Kernel: LinearKernel{}, C: 10, Epsilon: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	var maxErr float64
	for i := -10; i <= 10; i++ {
		x := float64(i) / 5
		got := m.Predict([]float64{x})
		want := 2*x + 1
		if e := math.Abs(got - want); e > maxErr {
			maxErr = e
		}
	}
	if maxErr > 0.35 {
		t.Fatalf("max error = %v", maxErr)
	}
}

func TestSVRFitsSine(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	var X [][]float64
	var y []float64
	for i := 0; i < 120; i++ {
		x := rng.Float64()*2*math.Pi - math.Pi
		X = append(X, []float64{x})
		y = append(y, math.Sin(x)+rng.NormFloat64()*0.05)
	}
	m, err := TrainSVR(X, y, SVRConfig{Kernel: RBFKernel{Gamma: 1}, C: 10, Epsilon: 0.05, MaxIter: 2000})
	if err != nil {
		t.Fatal(err)
	}
	var sumSq float64
	n := 0
	for x := -3.0; x <= 3.0; x += 0.1 {
		e := m.Predict([]float64{x}) - math.Sin(x)
		sumSq += e * e
		n++
	}
	rmse := math.Sqrt(sumSq / float64(n))
	if rmse > 0.15 {
		t.Fatalf("sine RMSE = %v", rmse)
	}
}

func TestSVRConstantTarget(t *testing.T) {
	X := [][]float64{{0}, {1}, {2}, {3}}
	y := []float64{5, 5, 5, 5}
	m, err := TrainSVR(X, y, SVRConfig{Kernel: LinearKernel{}, C: 1, Epsilon: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Predict([]float64{1.5}); math.Abs(got-5) > 0.2 {
		t.Fatalf("constant prediction = %v, want ≈ 5", got)
	}
}

func TestSVRValidation(t *testing.T) {
	if _, err := TrainSVR(nil, nil, SVRConfig{}); err == nil {
		t.Fatal("empty must fail")
	}
	if _, err := TrainSVR([][]float64{{1}}, []float64{1, 2}, SVRConfig{}); err == nil {
		t.Fatal("length mismatch must fail")
	}
	if _, err := TrainSVR([][]float64{{1, 2}, {3}}, []float64{1, 2}, SVRConfig{}); err == nil {
		t.Fatal("ragged must fail")
	}
}

func TestMedian(t *testing.T) {
	if got := median([]float64{3, 1, 2}); got != 2 {
		t.Fatalf("median odd = %v", got)
	}
	if got := median([]float64{4, 1, 3, 2}); got != 2.5 {
		t.Fatalf("median even = %v", got)
	}
	if got := median(nil); got != 0 {
		t.Fatalf("median empty = %v", got)
	}
}

func TestTSVMAccuracyAndCost(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	Xl, yl := twoBlobs(20, 3, rng)
	Xu, yu := twoBlobs(120, 3, rng)

	svcOnly, err := TrainSVC(Xl, yl, SVCConfig{Kernel: LinearKernel{}, C: 1})
	if err != nil {
		t.Fatal(err)
	}
	tsvm, stats, err := TrainTSVM(Xl, yl, Xu, TSVMConfig{
		SVC:         SVCConfig{Kernel: LinearKernel{}, C: 1},
		MaxRetrains: 60,
	})
	if err != nil {
		t.Fatal(err)
	}
	accSVC := accuracyOf(svcOnly, Xu, yu)
	accTSVM := accuracyOf(tsvm, Xu, yu)
	// Paper §5: TSVM achieves roughly the same accuracy…
	if accTSVM < accSVC-0.08 {
		t.Fatalf("TSVM accuracy %v much worse than SVC %v", accTSVM, accSVC)
	}
	// …at hugely increased cost: many full retrainings.
	if stats.Retrains < 5 {
		t.Fatalf("TSVM retrains = %d, expected many", stats.Retrains)
	}
	if stats.Elapsed <= 0 {
		t.Fatal("elapsed must be positive")
	}
}

func TestTSVMNoUnlabeledFallsBack(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	Xl, yl := twoBlobs(30, 3, rng)
	m, stats, err := TrainTSVM(Xl, yl, nil, TSVMConfig{SVC: SVCConfig{Kernel: LinearKernel{}}})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Retrains != 1 {
		t.Fatalf("retrains = %d", stats.Retrains)
	}
	if acc := accuracyOf(m, Xl, yl); acc < 0.95 {
		t.Fatalf("fallback accuracy = %v", acc)
	}
}

func TestTSVMRespectsPositiveFraction(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	Xl, yl := twoBlobs(16, 3, rng)
	Xu, _ := twoBlobs(60, 3, rng)
	_, stats, err := TrainTSVM(Xl, yl, Xu, TSVMConfig{
		SVC:              SVCConfig{Kernel: LinearKernel{}, C: 1},
		PositiveFraction: 0.5,
		MaxRetrains:      30,
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Retrains > 30 {
		t.Fatalf("retrain cap violated: %d", stats.Retrains)
	}
}

// Property: RBF kernel values are in (0, 1] and symmetric.
func TestRBFKernelProperty(t *testing.T) {
	k := RBFKernel{Gamma: 0.3}
	f := func(a, b [4]float64) bool {
		for i := range a {
			a[i] = math.Mod(a[i], 10)
			b[i] = math.Mod(b[i], 10)
			if math.IsNaN(a[i]) {
				a[i] = 0
			}
			if math.IsNaN(b[i]) {
				b[i] = 0
			}
		}
		v := k.Eval(a[:], b[:])
		w := k.Eval(b[:], a[:])
		return v > 0 && v <= 1 && v == w
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
