package svm

import (
	"fmt"
	"math"
	"math/rand"
)

// SVRConfig configures the ε-insensitive support vector regression trainer.
type SVRConfig struct {
	// Kernel defaults to RBF with DefaultGamma when nil.
	Kernel Kernel
	// C is the penalty (default 1).
	C float64
	// Epsilon is the insensitive-tube half-width (default 0.1).
	Epsilon float64
	// Tol is the convergence tolerance on objective improvement
	// (default 1e-4).
	Tol float64
	// MaxIter caps full coordinate passes (default 1000).
	MaxIter int
	// CacheEntries caps the Gram matrix cache (default 16M cells).
	CacheEntries int
	// Seed drives pair selection.
	Seed int64
}

func (c *SVRConfig) fillDefaults(X [][]float64) {
	if c.Kernel == nil {
		c.Kernel = RBFKernel{Gamma: DefaultGamma(X)}
	}
	if c.C <= 0 {
		c.C = 1
	}
	if c.Epsilon <= 0 {
		c.Epsilon = 0.1
	}
	if c.Tol <= 0 {
		c.Tol = 1e-4
	}
	if c.MaxIter <= 0 {
		c.MaxIter = 1000
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = 16 << 20
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// SVR is a trained support vector regression model:
// f(x) = Σ βᵢ K(xᵢ, x) + b with βᵢ = αᵢ − αᵢ*.
type SVR struct {
	kernel   Kernel
	supportX [][]float64
	beta     []float64
	b        float64
}

// NumSupport returns the number of support vectors.
func (m *SVR) NumSupport() int { return len(m.supportX) }

// Predict evaluates the regression function at x.
func (m *SVR) Predict(x []float64) float64 {
	s := m.b
	for i, sv := range m.supportX {
		s += m.beta[i] * m.kernel.Eval(sv, x)
	}
	return s
}

// PredictAll evaluates a batch.
func (m *SVR) PredictAll(X [][]float64) []float64 {
	out := make([]float64, len(X))
	for i, x := range X {
		out[i] = m.Predict(x)
	}
	return out
}

// TrainSVR fits ε-SVR by pairwise coordinate descent on the dual:
//
//	max −½ Σᵢⱼ βᵢβⱼK(i,j) + Σᵢ βᵢyᵢ − ε Σᵢ |βᵢ|
//	s.t. Σ βᵢ = 0,  −C ≤ βᵢ ≤ C.
//
// Each step picks a pair (i, j), holds s = βᵢ + βⱼ fixed (preserving the
// equality constraint), and maximizes the resulting one-dimensional
// piecewise-quadratic objective exactly by checking the three smooth
// segments induced by the |βᵢ| and |s − βᵢ| terms.
func TrainSVR(X [][]float64, y []float64, cfg SVRConfig) (*SVR, error) {
	if len(X) == 0 {
		return nil, fmt.Errorf("svm: empty training set")
	}
	if len(X) != len(y) {
		return nil, fmt.Errorf("svm: %d samples but %d targets", len(X), len(y))
	}
	dim := len(X[0])
	for i, x := range X {
		if len(x) != dim {
			return nil, fmt.Errorf("svm: sample %d has dimension %d, want %d", i, len(x), dim)
		}
	}
	cfg.fillDefaults(X)

	n := len(X)
	km := newKernelMatrix(cfg.Kernel, X, cfg.CacheEntries)
	rng := rand.New(rand.NewSource(cfg.Seed))

	beta := make([]float64, n)
	// g[i] = Σ_j β_j K(i,j): the smooth part of the gradient.
	g := make([]float64, n)
	rowI := make([]float64, n)
	rowJ := make([]float64, n)

	// objective contribution difference when βi moves to v within a fixed
	// segment (sign σi for |βi|, σj for |βj| where βj = s − v):
	//   Q(v) = −½ Kii v² − ½ Kjj (s−v)² − Kij v(s−v)
	//          + v yi + (s−v) yj − ε(σi v + σj (s−v)) − cross-terms
	// Cross terms with other β are linear in v via g.

	for iter := 0; iter < cfg.MaxIter; iter++ {
		improved := 0.0
		for i := 0; i < n; i++ {
			j := rng.Intn(n - 1)
			if j >= i {
				j++
			}
			s := beta[i] + beta[j]
			Kii, Kjj, Kij := km.at(i, i), km.at(j, j), km.at(i, j)
			curvature := Kii + Kjj - 2*Kij
			if curvature < 1e-12 {
				continue
			}
			// Gradient of the smooth part w.r.t. βi with βj = s − βi:
			//   d/dβi [−½ βᵀKβ + βᵀy] = −(g_i − g_j) + (y_i − y_j)
			// evaluated at the current point; the quadratic coefficient is
			// −curvature. We solve each |·| segment analytically.
			gi := g[i] - beta[i]*Kii - beta[j]*Kij
			gj := g[j] - beta[i]*Kij - beta[j]*Kjj
			// With βi = v: smooth objective derivative at v is
			//   −(gi + Kii v + Kij (s − v)) + (gj + Kij v + Kjj (s − v))
			//   + yi − yj
			// = −gi + gj + yi − yj − v·curvature + s(Kjj − Kij)
			linear := -gi + gj + y[i] - y[j] + s*(Kjj-Kij)

			lo := math.Max(-cfg.C, s-cfg.C)
			hi := math.Min(cfg.C, s+cfg.C)
			if lo > hi {
				continue
			}

			// Candidate optima: for each (σi, σj) sign pair the epsilon
			// term contributes −ε(σi − σj) to the derivative; solve
			// linear − v·curvature − ε(σi − σj) = 0.
			best := beta[i]
			bestVal := math.Inf(-1)
			evalObj := func(v float64) float64 {
				bj := s - v
				return -0.5*(Kii*v*v+Kjj*bj*bj) - Kij*v*bj -
					gi*v - gj*bj + y[i]*v + y[j]*bj -
					cfg.Epsilon*(math.Abs(v)+math.Abs(bj))
			}
			consider := func(v float64) {
				if v < lo {
					v = lo
				}
				if v > hi {
					v = hi
				}
				if val := evalObj(v); val > bestVal {
					bestVal, best = val, v
				}
			}
			for _, si := range []float64{-1, 1} {
				for _, sj := range []float64{-1, 1} {
					consider((linear - cfg.Epsilon*(si-sj)) / curvature)
				}
			}
			consider(0) // breakpoint of |βi|
			consider(s) // breakpoint of |βj|
			consider(lo)
			consider(hi)

			if math.Abs(best-beta[i]) < 1e-12 {
				continue
			}
			cur := evalObj(beta[i])
			if bestVal <= cur+1e-15 {
				continue
			}
			improved += bestVal - cur

			dI := best - beta[i]
			dJ := (s - best) - beta[j]
			km.rowInto(i, rowI)
			km.rowInto(j, rowJ)
			for k := 0; k < n; k++ {
				g[k] += dI*rowI[k] + dJ*rowJ[k]
			}
			beta[i] = best
			beta[j] = s - best
		}
		if improved < cfg.Tol {
			break
		}
	}

	// Bias: for free support vectors (0 < |βi| < C), KKT gives
	// y_i − g_i = b + ε·sign(β_i); average over them. If none are free,
	// fall back to the median residual.
	var bSum float64
	var bCount int
	for i := 0; i < n; i++ {
		a := math.Abs(beta[i])
		if a > 1e-8 && a < cfg.C-1e-8 {
			bSum += y[i] - g[i] - cfg.Epsilon*sign(beta[i])
			bCount++
		}
	}
	b := 0.0
	if bCount > 0 {
		b = bSum / float64(bCount)
	} else {
		res := make([]float64, n)
		for i := range res {
			res[i] = y[i] - g[i]
		}
		b = median(res)
	}

	model := &SVR{kernel: cfg.Kernel, b: b}
	for i := 0; i < n; i++ {
		if math.Abs(beta[i]) > 1e-9 {
			model.supportX = append(model.supportX, X[i])
			model.beta = append(model.beta, beta[i])
		}
	}
	return model, nil
}

func sign(v float64) float64 {
	if v > 0 {
		return 1
	}
	if v < 0 {
		return -1
	}
	return 0
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]float64(nil), xs...)
	// insertion sort: n is small and this avoids importing sort for one use
	for i := 1; i < len(cp); i++ {
		for j := i; j > 0 && cp[j] < cp[j-1]; j-- {
			cp[j], cp[j-1] = cp[j-1], cp[j]
		}
	}
	m := len(cp) / 2
	if len(cp)%2 == 1 {
		return cp[m]
	}
	return (cp[m-1] + cp[m]) / 2
}
