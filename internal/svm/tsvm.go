package svm

import (
	"math"
	"sort"
	"time"
)

// TSVMConfig configures the transductive SVM trainer.
type TSVMConfig struct {
	// SVC carries the kernel, C (for labeled examples) and SMO knobs.
	SVC SVCConfig
	// PositiveFraction fixes the fraction of unlabeled examples assigned
	// to the positive class (Joachims' num+ constraint). <= 0 means
	// "estimate from the labeled class ratio".
	PositiveFraction float64
	// CStarInit is the starting penalty for unlabeled examples, raised
	// geometrically toward C (default 1e-4 · C).
	CStarInit float64
	// MaxRetrains caps the total number of inner SVC trainings, the
	// safety valve that keeps tests bounded (default 200).
	MaxRetrains int
}

// TSVMStats reports the work a transductive training performed; the
// Section 5 experiment uses it to contrast SVM and TSVM runtimes.
type TSVMStats struct {
	Retrains int
	Switches int
	Elapsed  time.Duration
}

// TrainTSVM fits a transductive SVM in the style of Joachims (1999):
// the unlabeled set receives tentative labels from an inductive model
// under a fixed positive fraction; pairs of margin-violating unlabeled
// examples with opposite labels are then switched and the machine
// retrained, while the unlabeled penalty C* anneals upward toward C.
//
// Every retraining is a full SMO run over labeled+unlabeled data, which is
// why TSVM runtime explodes with database size — the effect the paper
// measures (≈3 s supervised vs ≈90 min transductive on its setup).
func TrainTSVM(Xl [][]float64, yl []bool, Xu [][]float64, cfg TSVMConfig) (*SVC, TSVMStats, error) {
	start := time.Now()
	stats := TSVMStats{}
	if len(Xu) == 0 {
		model, err := TrainSVC(Xl, yl, cfg.SVC)
		stats.Retrains = 1
		stats.Elapsed = time.Since(start)
		return model, stats, err
	}
	if cfg.MaxRetrains <= 0 {
		cfg.MaxRetrains = 200
	}

	base, err := TrainSVC(Xl, yl, cfg.SVC)
	if err != nil {
		return nil, stats, err
	}
	stats.Retrains++

	// Tentative unlabeled labels: top fraction by decision value.
	frac := cfg.PositiveFraction
	if frac <= 0 {
		pos := 0
		for _, v := range yl {
			if v {
				pos++
			}
		}
		frac = float64(pos) / float64(len(yl))
	}
	numPlus := int(frac*float64(len(Xu)) + 0.5)
	if numPlus < 1 {
		numPlus = 1
	}
	if numPlus > len(Xu)-1 {
		numPlus = len(Xu) - 1
	}
	type scored struct {
		idx int
		dec float64
	}
	scores := make([]scored, len(Xu))
	for i, x := range Xu {
		scores[i] = scored{idx: i, dec: base.Decision(x)}
	}
	sort.Slice(scores, func(a, b int) bool { return scores[a].dec > scores[b].dec })
	yu := make([]bool, len(Xu))
	for rank, s := range scores {
		yu[s.idx] = rank < numPlus
	}

	// Combined problem with per-sample C.
	n := len(Xl) + len(Xu)
	X := make([][]float64, 0, n)
	X = append(X, Xl...)
	X = append(X, Xu...)
	y := make([]bool, n)
	copy(y, yl)

	labeledC := cfg.SVC.C
	if labeledC <= 0 {
		labeledC = 1
	}
	cStar := cfg.CStarInit
	if cStar <= 0 {
		cStar = 1e-4 * labeledC
	}

	var model *SVC
	train := func() error {
		copy(y[len(Xl):], yu)
		perC := make([]float64, n)
		for i := range perC {
			if i < len(Xl) {
				perC[i] = labeledC
			} else {
				perC[i] = cStar
			}
		}
		c := cfg.SVC
		c.PerSampleC = perC
		m, err := TrainSVC(X, y, c)
		if err != nil {
			return err
		}
		model = m
		stats.Retrains++
		return nil
	}
	if err := train(); err != nil {
		return nil, stats, err
	}

	for cStar < labeledC && stats.Retrains < cfg.MaxRetrains {
		// Inner loop: switch margin-violating opposite pairs.
		for stats.Retrains < cfg.MaxRetrains {
			// slack of unlabeled example i under its tentative label
			slack := make([]float64, len(Xu))
			for i, x := range Xu {
				d := model.Decision(x)
				if !yu[i] {
					d = -d
				}
				slack[i] = math.Max(0, 1-d)
			}
			// Find the most violating positive/negative pair.
			bi, bj := -1, -1
			for i := range Xu {
				if !yu[i] || slack[i] <= 0 {
					continue
				}
				for j := range Xu {
					if yu[j] || slack[j] <= 0 {
						continue
					}
					if slack[i]+slack[j] > 2.001 {
						if bi == -1 || slack[i]+slack[j] > slack[bi]+slack[bj] {
							bi, bj = i, j
						}
					}
				}
			}
			if bi == -1 {
				break
			}
			yu[bi], yu[bj] = false, true
			stats.Switches++
			if err := train(); err != nil {
				return nil, stats, err
			}
		}
		cStar = math.Min(labeledC, 2*cStar)
		if err := train(); err != nil {
			return nil, stats, err
		}
	}

	stats.Elapsed = time.Since(start)
	return model, stats, nil
}
