package vecmath

import (
	"fmt"
	"math/rand"
)

// Matrix is a dense row-major matrix. Rows are contiguous slices of the
// backing Data array, so Row(i) returns a view, not a copy.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// NewMatrix allocates a zeroed rows×cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("vecmath: NewMatrix negative shape %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// Row returns row i as a mutable view into the matrix.
func (m *Matrix) Row(i int) []float64 {
	return m.Data[i*m.Cols : (i+1)*m.Cols]
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// FillRandom fills the matrix with uniform values in [-scale, scale).
// Factor models start from small random coordinates; the scale controls how
// far initial points are from the origin.
func (m *Matrix) FillRandom(rng *rand.Rand, scale float64) {
	for i := range m.Data {
		m.Data[i] = (rng.Float64()*2 - 1) * scale
	}
}

// MulVec computes dst = m · v where v has length Cols and dst length Rows.
// dst is returned for chaining; if dst is nil a new slice is allocated.
func (m *Matrix) MulVec(v, dst []float64) []float64 {
	if len(v) != m.Cols {
		panic(fmt.Sprintf("vecmath: MulVec v length %d != cols %d", len(v), m.Cols))
	}
	if dst == nil {
		dst = make([]float64, m.Rows)
	}
	if len(dst) != m.Rows {
		panic(fmt.Sprintf("vecmath: MulVec dst length %d != rows %d", len(dst), m.Rows))
	}
	for i := 0; i < m.Rows; i++ {
		dst[i] = Dot(m.Row(i), v)
	}
	return dst
}

// MulVecT computes dst = mᵀ · v where v has length Rows and dst length Cols.
func (m *Matrix) MulVecT(v, dst []float64) []float64 {
	if len(v) != m.Rows {
		panic(fmt.Sprintf("vecmath: MulVecT v length %d != rows %d", len(v), m.Rows))
	}
	if dst == nil {
		dst = make([]float64, m.Cols)
	}
	if len(dst) != m.Cols {
		panic(fmt.Sprintf("vecmath: MulVecT dst length %d != cols %d", len(dst), m.Cols))
	}
	for j := range dst {
		dst[j] = 0
	}
	for i := 0; i < m.Rows; i++ {
		AXPY(dst, v[i], m.Row(i))
	}
	return dst
}
