// Package vecmath provides the small dense linear-algebra kernel shared by
// the factor-model trainer, the SVM solver, and the LSI implementation.
//
// All routines operate on plain []float64 slices and row-major matrices so
// that callers can slice views into larger buffers without copying. The
// package is deliberately free of clever abstractions: every experiment in
// the repository funnels through these few loops, so they are kept simple,
// allocation-free where possible, and easy to audit.
package vecmath

import (
	"fmt"
	"math"
)

// Dot returns the scalar product of a and b.
// It panics if the lengths differ, since a silent truncation would corrupt
// model training in a way that is very hard to track down.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("vecmath: Dot length mismatch %d != %d", len(a), len(b)))
	}
	var s float64
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// SqDist returns the squared Euclidean distance between a and b.
func SqDist(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("vecmath: SqDist length mismatch %d != %d", len(a), len(b)))
	}
	var s float64
	for i, v := range a {
		d := v - b[i]
		s += d * d
	}
	return s
}

// Dist returns the Euclidean distance between a and b.
func Dist(a, b []float64) float64 {
	return math.Sqrt(SqDist(a, b))
}

// Norm returns the Euclidean norm of a.
func Norm(a []float64) float64 {
	return math.Sqrt(Dot(a, a))
}

// Scale multiplies every element of a by c in place.
func Scale(a []float64, c float64) {
	for i := range a {
		a[i] *= c
	}
}

// AXPY computes a += c*b in place.
func AXPY(a []float64, c float64, b []float64) {
	if len(a) != len(b) {
		panic(fmt.Sprintf("vecmath: AXPY length mismatch %d != %d", len(a), len(b)))
	}
	for i := range a {
		a[i] += c * b[i]
	}
}

// Normalize scales a to unit norm in place and returns the original norm.
// A zero vector is left untouched and 0 is returned.
func Normalize(a []float64) float64 {
	n := Norm(a)
	if n == 0 {
		return 0
	}
	Scale(a, 1/n)
	return n
}

// Mean returns the arithmetic mean of a, or 0 for an empty slice.
func Mean(a []float64) float64 {
	if len(a) == 0 {
		return 0
	}
	var s float64
	for _, v := range a {
		s += v
	}
	return s / float64(len(a))
}

// Variance returns the population variance of a, or 0 for fewer than two
// elements.
func Variance(a []float64) float64 {
	if len(a) < 2 {
		return 0
	}
	m := Mean(a)
	var s float64
	for _, v := range a {
		d := v - m
		s += d * d
	}
	return s / float64(len(a))
}

// Clamp limits v to the closed interval [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Pearson returns the Pearson correlation coefficient of the paired samples
// a and b, or 0 if either side has zero variance.
func Pearson(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("vecmath: Pearson length mismatch %d != %d", len(a), len(b)))
	}
	if len(a) == 0 {
		return 0
	}
	ma, mb := Mean(a), Mean(b)
	var cov, va, vb float64
	for i := range a {
		da := a[i] - ma
		db := b[i] - mb
		cov += da * db
		va += da * da
		vb += db * db
	}
	if va == 0 || vb == 0 {
		return 0
	}
	return cov / math.Sqrt(va*vb)
}
