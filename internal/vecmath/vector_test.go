package vecmath

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestDot(t *testing.T) {
	if got := Dot([]float64{1, 2, 3}, []float64{4, 5, 6}); got != 32 {
		t.Fatalf("Dot = %v, want 32", got)
	}
	if got := Dot(nil, nil); got != 0 {
		t.Fatalf("Dot(nil,nil) = %v, want 0", got)
	}
}

func TestDotPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

func TestSqDistAndDist(t *testing.T) {
	a := []float64{0, 0}
	b := []float64{3, 4}
	if got := SqDist(a, b); got != 25 {
		t.Fatalf("SqDist = %v, want 25", got)
	}
	if got := Dist(a, b); got != 5 {
		t.Fatalf("Dist = %v, want 5", got)
	}
}

func TestNormAndNormalize(t *testing.T) {
	v := []float64{3, 4}
	if got := Norm(v); got != 5 {
		t.Fatalf("Norm = %v, want 5", got)
	}
	n := Normalize(v)
	if n != 5 {
		t.Fatalf("Normalize returned %v, want 5", n)
	}
	if !almostEqual(Norm(v), 1, 1e-12) {
		t.Fatalf("normalized norm = %v, want 1", Norm(v))
	}

	zero := []float64{0, 0}
	if got := Normalize(zero); got != 0 {
		t.Fatalf("Normalize(zero) = %v, want 0", got)
	}
	if zero[0] != 0 || zero[1] != 0 {
		t.Fatal("Normalize mutated a zero vector")
	}
}

func TestScaleAXPY(t *testing.T) {
	a := []float64{1, 2}
	Scale(a, 3)
	if a[0] != 3 || a[1] != 6 {
		t.Fatalf("Scale got %v", a)
	}
	AXPY(a, 2, []float64{1, 1})
	if a[0] != 5 || a[1] != 8 {
		t.Fatalf("AXPY got %v", a)
	}
}

func TestMeanVariance(t *testing.T) {
	if got := Mean(nil); got != 0 {
		t.Fatalf("Mean(nil) = %v", got)
	}
	a := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(a); got != 5 {
		t.Fatalf("Mean = %v, want 5", got)
	}
	if got := Variance(a); got != 4 {
		t.Fatalf("Variance = %v, want 4", got)
	}
	if got := Variance([]float64{1}); got != 0 {
		t.Fatalf("Variance single = %v, want 0", got)
	}
}

func TestClamp(t *testing.T) {
	cases := []struct{ v, lo, hi, want float64 }{
		{5, 1, 10, 5},
		{-3, 1, 10, 1},
		{42, 1, 10, 10},
		{1, 1, 10, 1},
		{10, 1, 10, 10},
	}
	for _, c := range cases {
		if got := Clamp(c.v, c.lo, c.hi); got != c.want {
			t.Errorf("Clamp(%v,%v,%v) = %v, want %v", c.v, c.lo, c.hi, got, c.want)
		}
	}
}

func TestPearson(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5}
	if got := Pearson(a, a); !almostEqual(got, 1, 1e-12) {
		t.Fatalf("Pearson(a,a) = %v, want 1", got)
	}
	b := []float64{5, 4, 3, 2, 1}
	if got := Pearson(a, b); !almostEqual(got, -1, 1e-12) {
		t.Fatalf("Pearson(a,-a) = %v, want -1", got)
	}
	if got := Pearson(a, []float64{2, 2, 2, 2, 2}); got != 0 {
		t.Fatalf("Pearson with constant = %v, want 0", got)
	}
	if got := Pearson(nil, nil); got != 0 {
		t.Fatalf("Pearson(nil,nil) = %v, want 0", got)
	}
}

// Property: the Cauchy-Schwarz inequality holds for Dot and Norm.
func TestCauchySchwarzProperty(t *testing.T) {
	f := func(a, b [8]float64) bool {
		av, bv := a[:], b[:]
		for i := range av {
			av[i] = math.Mod(av[i], 1e3)
			bv[i] = math.Mod(bv[i], 1e3)
			if math.IsNaN(av[i]) {
				av[i] = 0
			}
			if math.IsNaN(bv[i]) {
				bv[i] = 0
			}
		}
		lhs := math.Abs(Dot(av, bv))
		rhs := Norm(av) * Norm(bv)
		return lhs <= rhs*(1+1e-9)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: squared distance matches dot-product expansion
// |a-b|² = |a|² + |b|² − 2a·b.
func TestSqDistExpansionProperty(t *testing.T) {
	f := func(a, b [6]float64) bool {
		av, bv := a[:], b[:]
		// Keep inputs in a sane numeric range so the identity is not
		// destroyed by overflow to +Inf.
		for i := range av {
			av[i] = math.Mod(av[i], 1e3)
			bv[i] = math.Mod(bv[i], 1e3)
			if math.IsNaN(av[i]) {
				av[i] = 0
			}
			if math.IsNaN(bv[i]) {
				bv[i] = 0
			}
		}
		lhs := SqDist(av, bv)
		rhs := Dot(av, av) + Dot(bv, bv) - 2*Dot(av, bv)
		scale := math.Max(1, math.Max(math.Abs(lhs), math.Abs(rhs)))
		return math.Abs(lhs-rhs) <= 1e-9*scale
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: the triangle inequality holds for Dist.
func TestTriangleInequalityProperty(t *testing.T) {
	f := func(a, b, c [5]float64) bool {
		av, bv, cv := a[:], b[:], c[:]
		return Dist(av, cv) <= Dist(av, bv)+Dist(bv, cv)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(0, 1, 7)
	m.Set(1, 2, -2)
	if m.At(0, 1) != 7 || m.At(1, 2) != -2 {
		t.Fatal("Set/At mismatch")
	}
	row := m.Row(1)
	row[0] = 9
	if m.At(1, 0) != 9 {
		t.Fatal("Row must be a view, not a copy")
	}
	c := m.Clone()
	c.Set(0, 0, 123)
	if m.At(0, 0) == 123 {
		t.Fatal("Clone must be a deep copy")
	}
}

func TestMatrixMulVec(t *testing.T) {
	m := NewMatrix(2, 3)
	copy(m.Data, []float64{1, 2, 3, 4, 5, 6})
	got := m.MulVec([]float64{1, 1, 1}, nil)
	if got[0] != 6 || got[1] != 15 {
		t.Fatalf("MulVec = %v", got)
	}
	gotT := m.MulVecT([]float64{1, 1}, nil)
	want := []float64{5, 7, 9}
	for i := range want {
		if gotT[i] != want[i] {
			t.Fatalf("MulVecT = %v, want %v", gotT, want)
		}
	}
}

func TestMatrixFillRandomDeterministic(t *testing.T) {
	a := NewMatrix(4, 4)
	b := NewMatrix(4, 4)
	a.FillRandom(rand.New(rand.NewSource(1)), 0.5)
	b.FillRandom(rand.New(rand.NewSource(1)), 0.5)
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatal("FillRandom must be deterministic for equal seeds")
		}
		if a.Data[i] < -0.5 || a.Data[i] >= 0.5 {
			t.Fatalf("value %v out of [-0.5, 0.5)", a.Data[i])
		}
	}
}

func TestMatrixShapePanics(t *testing.T) {
	m := NewMatrix(2, 2)
	for name, f := range map[string]func(){
		"MulVec-bad-v":    func() { m.MulVec([]float64{1}, nil) },
		"MulVec-bad-dst":  func() { m.MulVec([]float64{1, 2}, []float64{0}) },
		"MulVecT-bad-v":   func() { m.MulVecT([]float64{1}, nil) },
		"negative-matrix": func() { NewMatrix(-1, 2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}
