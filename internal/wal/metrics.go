package wal

import "crowddb/internal/obs"

// WAL metric families (catalog: DESIGN.md §17). Fsync latency gets its
// own histogram because group commit makes it the durability tax every
// synchronous append shares — a slow disk shows up here first.
var (
	mAppends = obs.Default.Counter("crowddb_wal_appends_total",
		"Records appended to the write-ahead log.")
	mFsyncSeconds = obs.Default.Histogram("crowddb_wal_fsync_seconds",
		"File sync latency of WAL flushes, in seconds.", nil)
	mRotations = obs.Default.Counter("crowddb_wal_segment_rotations_total",
		"WAL segment rotations (active segment sealed, new one started).")
)
