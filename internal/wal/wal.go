// Package wal provides the durability substrate of the crowd-enabled
// database: an append-only, CRC-framed record log with segment rotation
// and batched fsync, plus an atomic snapshot writer/loader.
//
// Expanded columns are the most expensive state in the system — every one
// costs real crowd dollars and minutes of HIT latency — so losing them to
// a restart means paying the crowd twice. The WAL records every mutation
// (storage ops, ledger charges, job completions) as it happens; a snapshot
// captures the full state at a sequence number and lets the log be
// truncated. Recovery is snapshot + replay of the records after it.
//
// # On-disk layout
//
//	<dir>/wal-0000000000000001.log   segment; name = first seq it holds
//	<dir>/wal-0000000000004096.log
//	<dir>/snap-0000000000004095.snap snapshot; name = last seq it covers
//
// Each log record is framed as
//
//	[4B little-endian payload length][4B IEEE CRC32 of payload][payload]
//
// where the payload is a JSON envelope {"seq":N,"type":T,"data":...}.
// A torn write at the tail of the *last* segment (the only place a crash
// can tear) is detected by the CRC or a short frame and truncated away on
// Open; a bad frame in any earlier segment is data corruption and fails
// recovery loudly.
package wal

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Record is one logged entry, as handed to Replay callbacks.
type Record struct {
	Seq  uint64          `json:"seq"`
	Type string          `json:"type"`
	Data json.RawMessage `json:"data"`
}

// Options tunes a WAL.
type Options struct {
	// SegmentBytes is the rotation threshold (default 8 MiB).
	SegmentBytes int64
	// Fsync enables batched fsync: appended records are fsynced by a
	// background flusher every FsyncInterval, and synchronously by
	// AppendSync. Off, records still reach the OS via buffered writes
	// flushed on the same cadence — durable across process crashes but
	// not across power loss.
	Fsync bool
	// FsyncInterval is the group-commit window (default 5ms).
	FsyncInterval time.Duration
}

func (o *Options) fillDefaults() {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 8 << 20
	}
	if o.FsyncInterval <= 0 {
		o.FsyncInterval = 5 * time.Millisecond
	}
}

const (
	frameHeader  = 8 // 4B length + 4B CRC
	maxFrameSize = 64 << 20
	segPrefix    = "wal-"
	segSuffix    = ".log"
	snapPrefix   = "snap-"
	snapSuffix   = ".snap"
	// keptSnapshots is how many generations survive a WriteSnapshot; the
	// previous one is a fallback if the newest is found corrupt on Open.
	keptSnapshots = 2
)

// WAL is an append-only log plus snapshot store rooted at one directory.
// All methods are safe for concurrent use.
type WAL struct {
	dir  string
	opts Options

	mu      sync.Mutex
	f       *os.File
	w       *bufio.Writer
	seq     uint64 // last assigned sequence number
	snapSeq uint64 // covered by the latest loadable snapshot
	segSize int64
	dirty   bool
	closed  bool
	err     error // sticky append/flush failure

	snapState json.RawMessage // latest snapshot payload, cached by Open

	stopFlush chan struct{}
	doneFlush chan struct{}
}

// Open opens (creating if necessary) the WAL in dir: it locates the latest
// valid snapshot, scans every segment validating frames, truncates a torn
// tail off the last segment, and positions the log for appending.
func Open(dir string, opts Options) (*WAL, error) {
	opts.fillDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	w := &WAL{dir: dir, opts: opts, stopFlush: make(chan struct{}), doneFlush: make(chan struct{})}
	if err := w.loadLatestSnapshot(); err != nil {
		return nil, err
	}
	segs, err := w.segments()
	if err != nil {
		return nil, err
	}
	w.seq = w.snapSeq
	var last string
	for i, seg := range segs {
		tail := i == len(segs)-1
		lastSeq, goodLen, err := scanSegment(seg.path, tail)
		if err != nil {
			return nil, err
		}
		if tail {
			if fi, statErr := os.Stat(seg.path); statErr == nil && fi.Size() > goodLen {
				// Torn write from a crash: drop the garbage so appends
				// don't interleave with it.
				if err := os.Truncate(seg.path, goodLen); err != nil {
					return nil, fmt.Errorf("wal: truncating torn tail of %s: %w", seg.path, err)
				}
			}
			last = seg.path
			w.segSize = goodLen
		}
		if lastSeq > w.seq {
			w.seq = lastSeq
		}
	}
	if last == "" {
		last = w.segmentPath(w.seq + 1)
		w.segSize = 0
	}
	f, err := os.OpenFile(last, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	w.f = f
	w.w = bufio.NewWriterSize(f, 64<<10)
	go w.flusher()
	return w, nil
}

// Seq returns the last assigned sequence number.
func (w *WAL) Seq() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.seq
}

// SnapshotSeq returns the sequence number covered by the latest snapshot
// (0 when none exists).
func (w *WAL) SnapshotSeq() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.snapSeq
}

// Err returns the sticky append/flush error, if any. Mutators that cannot
// surface an append failure directly (Delete, Drop) rely on this latch
// being checked at Snapshot/Close time.
func (w *WAL) Err() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err
}

// Append logs one record and returns its sequence number. The record is
// buffered; it reaches the OS within FsyncInterval (and the platter, when
// Fsync is on).
func (w *WAL) Append(typ string, payload any) (uint64, error) {
	return w.append(typ, payload, false)
}

// AppendSync logs one record and flushes it (fsyncing when Fsync is on)
// before returning — for records whose loss is expensive, like a completed
// crowd job.
func (w *WAL) AppendSync(typ string, payload any) (uint64, error) {
	return w.append(typ, payload, true)
}

func (w *WAL) append(typ string, payload any, sync bool) (uint64, error) {
	data, err := json.Marshal(payload)
	if err != nil {
		return 0, fmt.Errorf("wal: marshal %s record: %w", typ, err)
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return 0, fmt.Errorf("wal: closed")
	}
	if w.err != nil {
		return 0, w.err
	}
	seq := w.seq + 1
	frame, err := encodeFrame(Record{Seq: seq, Type: typ, Data: data})
	if err != nil {
		return 0, err
	}
	if _, err := w.w.Write(frame); err != nil {
		w.err = fmt.Errorf("wal: append: %w", err)
		return 0, w.err
	}
	w.seq = seq
	w.segSize += int64(len(frame))
	w.dirty = true
	mAppends.Inc()
	if sync {
		if err := w.flushLocked(w.opts.Fsync); err != nil {
			return 0, err
		}
	}
	if w.segSize >= w.opts.SegmentBytes {
		if err := w.rotateLocked(); err != nil {
			return 0, err
		}
	}
	return seq, nil
}

// Sync flushes buffered records to the OS and, when Fsync is on, to disk.
func (w *WAL) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	return w.flushLocked(w.opts.Fsync)
}

func (w *WAL) flushLocked(fsync bool) error {
	if w.err != nil {
		return w.err
	}
	if !w.dirty {
		return nil
	}
	if err := w.w.Flush(); err != nil {
		w.err = fmt.Errorf("wal: flush: %w", err)
		return w.err
	}
	if fsync {
		start := time.Now()
		err := w.f.Sync()
		mFsyncSeconds.Observe(time.Since(start).Seconds())
		if err != nil {
			w.err = fmt.Errorf("wal: fsync: %w", err)
			return w.err
		}
	}
	w.dirty = false
	return nil
}

// rotateLocked seals the active segment and starts a new one whose name is
// the next record's sequence number. Caller holds w.mu.
func (w *WAL) rotateLocked() error {
	if err := w.flushLocked(w.opts.Fsync); err != nil {
		return err
	}
	if err := w.f.Close(); err != nil {
		w.err = fmt.Errorf("wal: rotate: %w", err)
		return w.err
	}
	f, err := os.OpenFile(w.segmentPath(w.seq+1), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		w.err = fmt.Errorf("wal: rotate: %w", err)
		return w.err
	}
	w.f = f
	w.w = bufio.NewWriterSize(f, 64<<10)
	w.segSize = 0
	w.dirty = false
	mRotations.Inc()
	return nil
}

// flusher is the group-commit loop: one flush (and fsync) covers every
// record appended during the interval.
func (w *WAL) flusher() {
	defer close(w.doneFlush)
	t := time.NewTicker(w.opts.FsyncInterval)
	defer t.Stop()
	for {
		select {
		case <-w.stopFlush:
			return
		case <-t.C:
			w.mu.Lock()
			if !w.closed {
				_ = w.flushLocked(w.opts.Fsync)
			}
			w.mu.Unlock()
		}
	}
}

// Replay invokes fn for every record after the latest snapshot, in
// sequence order. A torn tail on the last segment ends replay cleanly;
// corruption anywhere else is an error.
func (w *WAL) Replay(fn func(Record) error) error {
	w.mu.Lock()
	snapSeq := w.snapSeq
	segs, err := w.segments()
	w.mu.Unlock()
	if err != nil {
		return err
	}
	for i, seg := range segs {
		tail := i == len(segs)-1
		if err := replaySegment(seg.path, tail, snapSeq, fn); err != nil {
			return err
		}
	}
	return nil
}

// LoadSnapshot decodes the latest valid snapshot into v, reporting whether
// one existed.
func (w *WAL) LoadSnapshot(v any) (bool, error) {
	w.mu.Lock()
	state := w.snapState
	w.mu.Unlock()
	if state == nil {
		return false, nil
	}
	if err := json.Unmarshal(state, v); err != nil {
		return false, fmt.Errorf("wal: decode snapshot: %w", err)
	}
	return true, nil
}

// snapshotFile is the on-disk snapshot format. The CRC covers State, so a
// half-written or bit-rotted snapshot is detected and skipped on Open.
type snapshotFile struct {
	Seq   uint64          `json:"seq"`
	CRC   uint32          `json:"crc"`
	State json.RawMessage `json:"state"`
}

// WriteSnapshot atomically persists state as the snapshot covering every
// record up to and including seq, then drops fully covered log segments
// and stale snapshot generations. The caller must guarantee that state
// reflects all records ≤ seq and none after (see core's snapshot gate).
//
// The expensive part — marshalling and fsyncing the full state to a temp
// file — happens outside w.mu, so concurrent appends never stall behind
// snapshot I/O; only the rename, rotation, and pruning hold the lock.
func (w *WAL) WriteSnapshot(seq uint64, state any) error {
	raw, err := json.Marshal(state)
	if err != nil {
		return fmt.Errorf("wal: marshal snapshot: %w", err)
	}
	blob, err := json.Marshal(snapshotFile{Seq: seq, CRC: crc32.ChecksumIEEE(raw), State: raw})
	if err != nil {
		return fmt.Errorf("wal: marshal snapshot: %w", err)
	}
	final := filepath.Join(w.dir, fmt.Sprintf("%s%016d%s", snapPrefix, seq, snapSuffix))
	tmp := final + ".tmp"
	if err := writeFileSync(tmp, blob); err != nil {
		return fmt.Errorf("wal: write snapshot: %w", err)
	}

	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return fmt.Errorf("wal: closed")
	}
	if w.err != nil {
		return w.err
	}
	if seq > w.seq {
		return fmt.Errorf("wal: snapshot seq %d beyond log seq %d", seq, w.seq)
	}
	if err := w.flushLocked(w.opts.Fsync); err != nil {
		return err
	}
	if err := os.Rename(tmp, final); err != nil {
		return fmt.Errorf("wal: publish snapshot: %w", err)
	}
	syncDir(w.dir)
	if seq > w.snapSeq { // a concurrent newer snapshot must not regress
		w.snapSeq = seq
		w.snapState = raw
	}

	// Seal the active segment so truncation below sees a clean boundary:
	// every segment except the fresh one starts at or before seq.
	if err := w.rotateLocked(); err != nil {
		return err
	}
	w.pruneLocked()
	return nil
}

// pruneLocked removes all but the newest keptSnapshots snapshot files,
// then the log segments fully covered by the *oldest retained* snapshot —
// not the newest: if the newest generation is later found corrupt, Open
// falls back to the previous one and must still find every record since
// it in the log. Best-effort: an undeletable file costs disk, not
// correctness.
func (w *WAL) pruneLocked() {
	snaps, err := w.snapshots()
	if err != nil {
		return
	}
	for i := 0; i < len(snaps)-keptSnapshots; i++ {
		_ = os.Remove(snaps[i].path)
		snaps[i].path = ""
	}
	pruneSeq := w.snapSeq
	for _, s := range snaps {
		if s.path != "" { // oldest retained generation
			pruneSeq = s.firstSeq
			break
		}
	}
	segs, err := w.segments()
	if err != nil {
		return
	}
	// Segment i covers [firstSeq_i, firstSeq_{i+1}-1]; the last (active)
	// segment is never removed.
	for i := 0; i+1 < len(segs); i++ {
		if segs[i+1].firstSeq <= pruneSeq+1 {
			_ = os.Remove(segs[i].path)
		}
	}
}

// Close flushes and closes the log. Safe to call once.
func (w *WAL) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	w.closed = true
	flushErr := w.flushLocked(w.opts.Fsync)
	closeErr := w.f.Close()
	w.mu.Unlock()
	close(w.stopFlush)
	<-w.doneFlush
	if flushErr != nil {
		return flushErr
	}
	return closeErr
}

// --- file scanning ---

type fileRef struct {
	path     string
	firstSeq uint64 // segments: first record seq; snapshots: covered seq
}

func (w *WAL) segmentPath(firstSeq uint64) string {
	return filepath.Join(w.dir, fmt.Sprintf("%s%016d%s", segPrefix, firstSeq, segSuffix))
}

func (w *WAL) segments() ([]fileRef, error) {
	return w.list(segPrefix, segSuffix)
}

func (w *WAL) snapshots() ([]fileRef, error) {
	return w.list(snapPrefix, snapSuffix)
}

func (w *WAL) list(prefix, suffix string) ([]fileRef, error) {
	entries, err := os.ReadDir(w.dir)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	var out []fileRef
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
			continue
		}
		n, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, prefix), suffix), 10, 64)
		if err != nil {
			continue
		}
		out = append(out, fileRef{path: filepath.Join(w.dir, name), firstSeq: n})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].firstSeq < out[j].firstSeq })
	return out, nil
}

// loadLatestSnapshot finds the newest snapshot whose CRC verifies, caching
// its state. Corrupt generations are skipped (falling back to the previous
// one), matching the keptSnapshots retention.
func (w *WAL) loadLatestSnapshot() error {
	snaps, err := w.snapshots()
	if err != nil {
		return err
	}
	for i := len(snaps) - 1; i >= 0; i-- {
		blob, err := os.ReadFile(snaps[i].path)
		if err != nil {
			continue
		}
		var sf snapshotFile
		if json.Unmarshal(blob, &sf) != nil || crc32.ChecksumIEEE(sf.State) != sf.CRC {
			continue
		}
		w.snapSeq = sf.Seq
		w.snapState = sf.State
		return nil
	}
	return nil
}

func encodeFrame(rec Record) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, fmt.Errorf("wal: marshal record: %w", err)
	}
	frame := make([]byte, frameHeader+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))
	copy(frame[frameHeader:], payload)
	return frame, nil
}

// readFrame decodes the next frame. io.EOF means a clean end;
// errTornFrame wraps any short read or CRC mismatch.
var errTornFrame = fmt.Errorf("wal: torn or corrupt frame")

func readFrame(r *bufio.Reader) (Record, int, error) {
	var hdr [frameHeader]byte
	if _, err := io.ReadFull(r, hdr[:1]); err == io.EOF {
		return Record{}, 0, io.EOF
	} else if err != nil {
		return Record{}, 0, fmt.Errorf("%w: %v", errTornFrame, err)
	}
	if _, err := io.ReadFull(r, hdr[1:]); err != nil {
		return Record{}, 0, fmt.Errorf("%w: short header: %v", errTornFrame, err)
	}
	n := binary.LittleEndian.Uint32(hdr[0:4])
	crc := binary.LittleEndian.Uint32(hdr[4:8])
	if n == 0 || n > maxFrameSize {
		return Record{}, 0, fmt.Errorf("%w: implausible length %d", errTornFrame, n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return Record{}, 0, fmt.Errorf("%w: short payload: %v", errTornFrame, err)
	}
	if crc32.ChecksumIEEE(payload) != crc {
		return Record{}, 0, fmt.Errorf("%w: CRC mismatch", errTornFrame)
	}
	var rec Record
	if err := json.Unmarshal(payload, &rec); err != nil {
		return Record{}, 0, fmt.Errorf("%w: bad envelope: %v", errTornFrame, err)
	}
	return rec, frameHeader + int(n), nil
}

// scanSegment validates a segment, returning its last record's seq and the
// byte offset after the last good frame. In the tail segment a bad frame
// marks the recoverable end; elsewhere it is corruption.
func scanSegment(path string, tail bool) (lastSeq uint64, goodLen int64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, fmt.Errorf("wal: %w", err)
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 64<<10)
	for {
		rec, n, err := readFrame(r)
		if err == io.EOF {
			return lastSeq, goodLen, nil
		}
		if err != nil {
			if tail {
				return lastSeq, goodLen, nil
			}
			return 0, 0, fmt.Errorf("wal: segment %s: %w", filepath.Base(path), err)
		}
		lastSeq = rec.Seq
		goodLen += int64(n)
	}
}

func replaySegment(path string, tail bool, afterSeq uint64, fn func(Record) error) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 64<<10)
	for {
		rec, _, err := readFrame(r)
		if err == io.EOF {
			return nil
		}
		if err != nil {
			if tail {
				return nil
			}
			return fmt.Errorf("wal: segment %s: %w", filepath.Base(path), err)
		}
		if rec.Seq <= afterSeq {
			continue
		}
		if err := fn(rec); err != nil {
			return err
		}
	}
}

func writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// syncDir fsyncs a directory so a rename is durable; best-effort on
// filesystems that reject directory fsync.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
}
