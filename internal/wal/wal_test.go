package wal

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

type payload struct {
	N int    `json:"n"`
	S string `json:"s,omitempty"`
}

func appendN(t *testing.T, w *WAL, start, count int) {
	t.Helper()
	for i := start; i < start+count; i++ {
		if _, err := w.Append("test", payload{N: i}); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
}

func collect(t *testing.T, w *WAL) []int {
	t.Helper()
	var out []int
	err := w.Replay(func(r Record) error {
		var p payload
		if err := json.Unmarshal(r.Data, &p); err != nil {
			return err
		}
		out = append(out, p.N)
		return nil
	})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	return out
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 0, 100)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	got := collect(t, w2)
	if len(got) != 100 || got[0] != 0 || got[99] != 99 {
		t.Fatalf("replayed %d records, first=%v last=%v", len(got), got[0], got[len(got)-1])
	}
	if w2.Seq() != 100 {
		t.Fatalf("seq = %d, want 100", w2.Seq())
	}
}

func TestSegmentRotationAndReplayOrder(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{SegmentBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 0, 200)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if len(segs) < 2 {
		t.Fatalf("expected rotation, got %d segments", len(segs))
	}

	w2, err := Open(dir, Options{SegmentBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	got := collect(t, w2)
	if len(got) != 200 {
		t.Fatalf("replayed %d records, want 200", len(got))
	}
	for i, n := range got {
		if n != i {
			t.Fatalf("record %d out of order: %d", i, n)
		}
	}
}

// TestTruncatedTailRecovery chops a partial frame off the end of the log —
// the signature of a crash mid-write — and verifies that recovery keeps
// every complete record, truncates the garbage, and appends cleanly.
func TestTruncatedTailRecovery(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 0, 50)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if len(segs) != 1 {
		t.Fatalf("want 1 segment, got %d", len(segs))
	}
	fi, err := os.Stat(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	// Chop mid-frame: remove 7 bytes, leaving a torn final record.
	if err := os.Truncate(segs[0], fi.Size()-7); err != nil {
		t.Fatal(err)
	}

	w2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("open after torn tail: %v", err)
	}
	got := collect(t, w2)
	if len(got) != 49 {
		t.Fatalf("replayed %d records after torn tail, want 49", len(got))
	}
	// The log must keep working: next append continues the sequence with
	// no gap and no collision.
	seq, err := w2.Append("test", payload{N: 999})
	if err != nil {
		t.Fatal(err)
	}
	if seq != 50 {
		t.Fatalf("append after recovery got seq %d, want 50", seq)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}

	w3, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w3.Close()
	got = collect(t, w3)
	if len(got) != 50 || got[49] != 999 {
		t.Fatalf("after recovery+append: %d records, last=%d", len(got), got[len(got)-1])
	}
}

// TestCorruptTailRecordDropped flips a byte inside the last record's
// payload; the CRC must catch it and recovery must drop only that record.
func TestCorruptTailRecordDropped(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 0, 10)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	blob, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	blob[len(blob)-3] ^= 0xff
	if err := os.WriteFile(segs[0], blob, 0o644); err != nil {
		t.Fatal(err)
	}

	w2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("open after corrupt tail: %v", err)
	}
	defer w2.Close()
	got := collect(t, w2)
	if len(got) != 9 {
		t.Fatalf("replayed %d records after corrupt tail, want 9", len(got))
	}
}

// TestCorruptMiddleSegmentFails: corruption before the tail segment is
// unrecoverable data loss and must fail Open loudly, not silently skip.
func TestCorruptMiddleSegmentFails(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 0, 100)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if len(segs) < 3 {
		t.Fatalf("need ≥3 segments, got %d", len(segs))
	}
	blob, _ := os.ReadFile(segs[0])
	blob[len(blob)/2] ^= 0xff
	if err := os.WriteFile(segs[0], blob, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("Open succeeded over a corrupt middle segment")
	}
}

func TestSnapshotTruncatesAndSkipsReplayed(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{SegmentBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 0, 100)
	if err := w.WriteSnapshot(w.Seq(), map[string]int{"upto": 100}); err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 100, 20)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	var snap map[string]int
	ok, err := w2.LoadSnapshot(&snap)
	if err != nil || !ok {
		t.Fatalf("LoadSnapshot: ok=%v err=%v", ok, err)
	}
	if snap["upto"] != 100 {
		t.Fatalf("snapshot state = %v", snap)
	}
	got := collect(t, w2)
	if len(got) != 20 || got[0] != 100 {
		t.Fatalf("replay after snapshot: %d records, first=%v", len(got), got)
	}
	// Segments fully covered by the snapshot must be gone.
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	for _, s := range segs {
		lastSeq, _, err := scanSegment(s, true)
		if err != nil {
			t.Fatal(err)
		}
		if lastSeq != 0 && lastSeq <= 100 {
			t.Fatalf("segment %s (lastSeq %d) survived snapshot truncation", s, lastSeq)
		}
	}
}

// TestCorruptSnapshotFallsBack: a bit-rotted newest snapshot must be
// skipped in favor of the previous generation plus full log replay.
func TestCorruptSnapshotFallsBack(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 0, 10)
	if err := w.WriteSnapshot(w.Seq(), map[string]int{"gen": 1}); err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 10, 10)
	if err := w.WriteSnapshot(w.Seq(), map[string]int{"gen": 2}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	snaps, _ := filepath.Glob(filepath.Join(dir, "snap-*.snap"))
	if len(snaps) != 2 {
		t.Fatalf("want 2 snapshot generations, got %d", len(snaps))
	}
	newest := snaps[len(snaps)-1]
	blob, _ := os.ReadFile(newest)
	blob[len(blob)/2] ^= 0xff
	if err := os.WriteFile(newest, blob, 0o644); err != nil {
		t.Fatal(err)
	}

	w2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	var snap map[string]int
	ok, _ := w2.LoadSnapshot(&snap)
	if !ok || snap["gen"] != 1 {
		t.Fatalf("fallback snapshot: ok=%v state=%v", ok, snap)
	}
	// The records between generation 1 and generation 2 must still be in
	// the log (pruning only truncates up to the OLDEST retained snapshot)
	// — otherwise falling back would silently lose them.
	got := collect(t, w2)
	if len(got) != 10 || got[0] != 10 || got[9] != 19 {
		t.Fatalf("fallback replay lost records: %v", got)
	}
}

func TestAppendSyncDurableWithoutClose(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{Fsync: true})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, w, 0, 5)
	if _, err := w.AppendSync("test", payload{N: 5}); err != nil {
		t.Fatal(err)
	}
	// Simulate a kill: no Close, no flush. AppendSync must have pushed
	// everything buffered before it to disk.
	w2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	got := collect(t, w2)
	if len(got) != 6 {
		t.Fatalf("replayed %d records, want 6", len(got))
	}
}

func BenchmarkWALAppend(b *testing.B) {
	w, err := Open(b.TempDir(), Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer w.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.Append("bench", payload{N: i, S: "some payload text"}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReplay10k(b *testing.B) {
	dir := b.TempDir()
	w, err := Open(dir, Options{})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 10000; i++ {
		if _, err := w.Append("bench", payload{N: i, S: fmt.Sprintf("row-%d", i)}); err != nil {
			b.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := Open(dir, Options{})
		if err != nil {
			b.Fatal(err)
		}
		n := 0
		if err := r.Replay(func(Record) error { n++; return nil }); err != nil {
			b.Fatal(err)
		}
		if n != 10000 {
			b.Fatalf("replayed %d", n)
		}
		r.Close()
	}
}
