// Package cache is the semantic result cache: materialized SELECT
// results keyed on the planner's normalized plan fingerprint and
// invalidated by per-table sequence numbers.
//
// Two queries that lower to the same plan (aliases resolved, predicates
// canonicalized, pushdowns applied) produce the same answer against
// unchanged tables, so the fingerprint — not the SQL text — is the cache
// key. Every mutation of a table (insert, update, bulk crowd fill, index
// create/drop) bumps that table's sequence number; an entry records the
// sequence of every table it read at *capture* time and is validated
// against the current sequences on every hit. The capture-before-execute
// discipline closes the stale-store race: a mutation that lands while a
// SELECT is executing bumps the sequence past the one the entry recorded,
// so the entry can be stored but never served.
//
// Memory is bounded in bytes with LRU eviction; hit/miss/invalidation
// counters feed GET /workload.
package cache

import (
	"container/list"
	"sync"

	"crowddb/internal/storage"
)

// DefaultLimitBytes bounds the cache when the caller passes no limit.
const DefaultLimitBytes = 64 << 20

// Stats is a point-in-time snapshot of cache effectiveness.
type Stats struct {
	Hits          uint64 `json:"hits"`
	Misses        uint64 `json:"misses"`
	Invalidations uint64 `json:"invalidations"`
	Evictions     uint64 `json:"evictions"`
	Entries       int    `json:"entries"`
	Bytes         int64  `json:"bytes"`
	LimitBytes    int64  `json:"limit_bytes"`
}

type entry struct {
	key     string
	columns []string
	rows    []storage.Row
	// seqs records each read table's sequence number at capture time.
	seqs  map[string]uint64
	bytes int64
	elem  *list.Element
}

// Cache is a concurrency-safe, byte-bounded, LRU result cache.
type Cache struct {
	mu      sync.Mutex
	limit   int64
	bytes   int64
	seqs    map[string]uint64 // table (lower) → current sequence
	entries map[string]*entry // fingerprint → entry
	lru     *list.List        // front = most recently used; values are *entry

	hits, misses, invalidations, evictions uint64
}

// New creates a cache bounded to limit bytes (non-positive limit gets
// DefaultLimitBytes).
func New(limit int64) *Cache {
	if limit <= 0 {
		limit = DefaultLimitBytes
	}
	return &Cache{
		limit:   limit,
		seqs:    map[string]uint64{},
		entries: map[string]*entry{},
		lru:     list.New(),
	}
}

// TableSeqs snapshots the current sequence numbers of the given tables
// (lower-cased by the caller). Call it BEFORE executing the query whose
// result will be Put: an entry captured against these sequences is
// invalidated by any mutation that lands during execution.
func (c *Cache) TableSeqs(tables []string) map[string]uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	snap := make(map[string]uint64, len(tables))
	for _, t := range tables {
		snap[t] = c.seqs[t]
	}
	return snap
}

// Get returns the cached result for the fingerprint if every table it
// read is unchanged since capture. The returned rows are fresh copies —
// callers may retain or mutate them without corrupting the cache.
func (c *Cache) Get(fingerprint string) (columns []string, rows []storage.Row, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, found := c.entries[fingerprint]
	if !found {
		c.misses++
		return nil, nil, false
	}
	for table, seq := range e.seqs {
		if c.seqs[table] != seq {
			c.removeLocked(e)
			c.invalidations++
			c.misses++
			return nil, nil, false
		}
	}
	c.lru.MoveToFront(e.elem)
	c.hits++
	columns = append([]string(nil), e.columns...)
	rows = make([]storage.Row, len(e.rows))
	for i, r := range e.rows {
		rows[i] = r.Clone()
	}
	return columns, rows, true
}

// Put stores a result captured against the given table-sequence snapshot
// (from TableSeqs, taken before execution). The rows are copied in, so
// the caller's result stays independently mutable. Entries that would
// exceed the byte limit on their own are not cached; otherwise LRU
// entries are evicted until the new one fits. If any captured table has
// already moved past its snapshot sequence, the entry is stored anyway —
// Get's validation guarantees it can never be served.
func (c *Cache) Put(fingerprint string, seqs map[string]uint64, columns []string, rows []storage.Row) {
	size := entrySize(fingerprint, columns, rows)
	c.mu.Lock()
	defer c.mu.Unlock()
	if size > c.limit {
		return
	}
	if old, dup := c.entries[fingerprint]; dup {
		c.removeLocked(old)
	}
	for c.bytes+size > c.limit {
		back := c.lru.Back()
		if back == nil {
			break
		}
		c.removeLocked(back.Value.(*entry))
		c.evictions++
	}
	e := &entry{
		key:     fingerprint,
		columns: append([]string(nil), columns...),
		rows:    make([]storage.Row, len(rows)),
		seqs:    make(map[string]uint64, len(seqs)),
		bytes:   size,
	}
	for i, r := range rows {
		e.rows[i] = r.Clone()
	}
	for t, s := range seqs {
		e.seqs[t] = s
	}
	e.elem = c.lru.PushFront(e)
	c.entries[fingerprint] = e
	c.bytes += size
}

// InvalidateTable bumps the table's sequence number, killing every entry
// that read it (entries are dropped lazily on their next Get; the byte
// bound keeps dead entries from accumulating).
func (c *Cache) InvalidateTable(table string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.seqs[table]++
}

// Stats returns the current counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits: c.hits, Misses: c.misses,
		Invalidations: c.invalidations, Evictions: c.evictions,
		Entries: len(c.entries), Bytes: c.bytes, LimitBytes: c.limit,
	}
}

// removeLocked unlinks an entry. Caller holds c.mu.
func (c *Cache) removeLocked(e *entry) {
	delete(c.entries, e.key)
	c.lru.Remove(e.elem)
	c.bytes -= e.bytes
}

// entrySize estimates an entry's memory footprint: value headers plus
// text payloads plus key/column strings. An estimate is enough — the
// bound exists to keep the cache from growing without limit, not to
// account bytes exactly.
func entrySize(key string, columns []string, rows []storage.Row) int64 {
	size := int64(len(key)) + 64
	for _, c := range columns {
		size += int64(len(c)) + 16
	}
	for _, r := range rows {
		size += 24 // slice header
		for _, v := range r {
			size += 24
			if t, ok := v.AsText(); ok {
				size += int64(len(t))
			}
		}
	}
	return size
}
