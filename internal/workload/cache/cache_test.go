package cache

import (
	"fmt"
	"testing"

	"crowddb/internal/storage"
)

func row(vals ...string) storage.Row {
	r := make(storage.Row, len(vals))
	for i, v := range vals {
		r[i] = storage.Text(v)
	}
	return r
}

func TestHitMutateMiss(t *testing.T) {
	c := New(0)
	tables := []string{"movies"}
	snap := c.TableSeqs(tables)
	c.Put("fp1", snap, []string{"name"}, []storage.Row{row("alien")})

	if _, rows, ok := c.Get("fp1"); !ok || len(rows) != 1 {
		t.Fatalf("expected hit, got ok=%v rows=%v", ok, rows)
	}
	c.InvalidateTable("movies")
	if _, _, ok := c.Get("fp1"); ok {
		t.Fatal("hit after InvalidateTable — stale result served")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Invalidations != 1 {
		t.Fatalf("stats = %+v, want hits=1 misses=1 invalidations=1", st)
	}
	if st.Entries != 0 {
		t.Fatalf("invalidated entry still resident: %+v", st)
	}
}

func TestStaleStoreNeverServed(t *testing.T) {
	c := New(0)
	// Snapshot taken, then a mutation lands mid-execution, then the
	// (pre-mutation) result is stored. It must never be served.
	snap := c.TableSeqs([]string{"movies"})
	c.InvalidateTable("movies")
	c.Put("fp1", snap, []string{"name"}, []storage.Row{row("stale")})
	if _, _, ok := c.Get("fp1"); ok {
		t.Fatal("entry captured before a concurrent mutation was served")
	}
}

func TestMultiTableInvalidation(t *testing.T) {
	c := New(0)
	snap := c.TableSeqs([]string{"movies", "actors"})
	c.Put("join", snap, []string{"name"}, []storage.Row{row("x")})
	c.InvalidateTable("actors") // either table's mutation kills the entry
	if _, _, ok := c.Get("join"); ok {
		t.Fatal("join result survived a mutation of one input table")
	}
}

func TestGetReturnsIndependentCopies(t *testing.T) {
	c := New(0)
	snap := c.TableSeqs([]string{"movies"})
	c.Put("fp", snap, []string{"name"}, []storage.Row{row("alien")})
	_, rows, ok := c.Get("fp")
	if !ok {
		t.Fatal("expected hit")
	}
	rows[0][0] = storage.Text("corrupted")
	_, rows2, _ := c.Get("fp")
	if got, _ := rows2[0][0].AsText(); got != "alien" {
		t.Fatalf("cache entry corrupted through a returned row: %q", got)
	}
}

func TestPutCopiesCallerRows(t *testing.T) {
	c := New(0)
	snap := c.TableSeqs([]string{"movies"})
	rows := []storage.Row{row("alien")}
	c.Put("fp", snap, []string{"name"}, rows)
	rows[0][0] = storage.Text("mutated-after-put")
	_, got, _ := c.Get("fp")
	if txt, _ := got[0][0].AsText(); txt != "alien" {
		t.Fatalf("cache shares storage with caller rows: %q", txt)
	}
}

func TestLRUEviction(t *testing.T) {
	// Limit sized for roughly two entries.
	c := New(400)
	snap := c.TableSeqs([]string{"t"})
	c.Put("a", snap, []string{"v"}, []storage.Row{row("aaaa")})
	c.Put("b", snap, []string{"v"}, []storage.Row{row("bbbb")})
	c.Get("a") // touch a: b becomes LRU
	c.Put("c", snap, []string{"v"}, []storage.Row{row("cccc")})

	if _, _, ok := c.Get("b"); ok {
		t.Fatal("LRU entry b survived eviction")
	}
	if _, _, ok := c.Get("a"); !ok {
		t.Fatal("recently used entry a was evicted")
	}
	if st := c.Stats(); st.Evictions == 0 {
		t.Fatalf("no evictions recorded: %+v", st)
	}
	if st := c.Stats(); st.Bytes > st.LimitBytes {
		t.Fatalf("cache over limit: %+v", st)
	}
}

func TestOversizedEntryNotCached(t *testing.T) {
	c := New(100)
	var rows []storage.Row
	for i := 0; i < 50; i++ {
		rows = append(rows, row(fmt.Sprintf("row-%d-padding-padding", i)))
	}
	snap := c.TableSeqs([]string{"t"})
	c.Put("huge", snap, []string{"v"}, rows)
	if st := c.Stats(); st.Entries != 0 || st.Bytes != 0 {
		t.Fatalf("oversized entry was cached: %+v", st)
	}
}

func TestDuplicatePutReplaces(t *testing.T) {
	c := New(0)
	snap := c.TableSeqs([]string{"t"})
	c.Put("fp", snap, []string{"v"}, []storage.Row{row("old")})
	c.Put("fp", snap, []string{"v"}, []storage.Row{row("new")})
	_, rows, ok := c.Get("fp")
	if !ok || len(rows) != 1 {
		t.Fatalf("expected single-row hit, ok=%v rows=%v", ok, rows)
	}
	if txt, _ := rows[0][0].AsText(); txt != "new" {
		t.Fatalf("duplicate Put did not replace: %q", txt)
	}
	if st := c.Stats(); st.Entries != 1 {
		t.Fatalf("duplicate Put leaked an entry: %+v", st)
	}
}

func TestConcurrentAccessIsRaceClean(t *testing.T) {
	c := New(1 << 20)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 500; i++ {
			c.InvalidateTable("t")
			snap := c.TableSeqs([]string{"t"})
			c.Put(fmt.Sprintf("fp%d", i%7), snap, []string{"v"}, []storage.Row{row("x")})
		}
	}()
	for i := 0; i < 500; i++ {
		c.Get(fmt.Sprintf("fp%d", i%7))
		c.Stats()
	}
	<-done
}
