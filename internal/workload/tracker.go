// Package workload observes the query stream and learns its column
// co-access structure.
//
// The paper's thesis is that crowd-enabled databases should be driven by
// the workload: users exploring a malleable schema touch columns in
// correlated bursts (the dashboard that asks for comedy also asks for
// drama a query later). This package records every query's footprint —
// tables and columns touched, missing-column events, expansions — into a
// bounded in-memory trace plus durable aggregate counters, and derives a
// simple pairwise-lift model over column co-access. internal/core uses
// the model to pre-expand the likely-next column *inside the same
// coalescer batch window* as the demand expansion, so the speculative
// HITs ride the demand job's marketplace charge instead of paying their
// own (see core's speculation hook and DESIGN.md §13).
//
// The model is deliberately not machine learning: pairwise lift over a
// sliding co-occurrence window needs no training phase, no dependency,
// and is fully inspectable over GET /workload.
package workload

import (
	"sort"
	"strings"
	"sync"
)

// Kind classifies one observation.
type Kind string

const (
	// KindAccess is a query that touched existing columns.
	KindAccess Kind = "access"
	// KindMiss is a query that referenced a column the schema lacks —
	// the demand signal query-driven expansion reacts to.
	KindMiss Kind = "miss"
	// KindExpand is an expansion actually submitted. Expansions are
	// counted but do not feed the co-access model: a speculative
	// expansion reinforcing its own prediction would be a feedback loop.
	KindExpand Kind = "expand"
)

// Observation is one workload event: a query's footprint on one table.
// It is the WAL payload of the typed workload_obs record, so all fields
// are wire-serializable.
type Observation struct {
	Table   string   `json:"table"`
	Columns []string `json:"columns"`
	Kind    Kind     `json:"kind"`
}

// TableCounters is one table's durable aggregate state.
type TableCounters struct {
	Table string `json:"table"`
	// Queries counts access/miss observations on the table.
	Queries uint64 `json:"queries"`
	// Misses counts missing-column observations.
	Misses uint64 `json:"misses"`
	// Expands counts expansions submitted for the table.
	Expands uint64 `json:"expands"`
	// Columns counts how often each column was demanded (accessed or
	// missed).
	Columns map[string]uint64 `json:"columns,omitempty"`
	// Pairs[a][b] counts how often column b was demanded in the same
	// query as — or within the co-occurrence window after — column a.
	Pairs map[string]map[string]uint64 `json:"pairs,omitempty"`
}

// CounterState is the exportable aggregate state: the durable half of the
// tracker (the recent-trace ring is in-memory only and starts empty after
// a restart). It is embedded in the core snapshot.
type CounterState struct {
	TotalQueries uint64          `json:"total_queries"`
	TotalMisses  uint64          `json:"total_misses"`
	TotalExpands uint64          `json:"total_expands"`
	Tables       []TableCounters `json:"tables,omitempty"`
}

// Prediction is one candidate next-column with its evidence.
type Prediction struct {
	Column string `json:"column"`
	// Support is the raw co-occurrence count behind the prediction.
	Support uint64 `json:"support"`
	// Lift is P(candidate | trigger) / P(candidate): > 1 means the
	// trigger column makes the candidate more likely than its base rate.
	Lift float64 `json:"lift"`
}

// tableStats is the mutable per-table state. cols/pairs use lower-cased
// column names.
type tableStats struct {
	queries uint64
	misses  uint64
	expands uint64
	cols    map[string]uint64
	pairs   map[string]map[string]uint64
	// window holds the column sets of the last few access/miss
	// observations, for cross-query co-occurrence counting.
	window [][]string
}

// windowSize bounds how many past observations a new one co-occurs with.
// Small on purpose: "queried a query or two later" is the prefetchable
// signal; long-range correlation is noise at this scale.
const windowSize = 8

// minSupport is the co-occurrence count a pair needs before it can
// predict: a single coincidence must not spend speculative budget.
const minSupport = 2

// DefaultTraceCap bounds the in-memory recent-observation ring.
const DefaultTraceCap = 512

// Tracker is the concurrency-safe workload trace + co-access model.
type Tracker struct {
	mu       sync.Mutex
	traceCap int
	trace    []Observation // ring, oldest first
	tables   map[string]*tableStats
	totals   struct{ queries, misses, expands uint64 }
}

// NewTracker creates a tracker whose recent-trace ring holds at most cap
// observations (non-positive cap gets DefaultTraceCap).
func NewTracker(cap int) *Tracker {
	if cap <= 0 {
		cap = DefaultTraceCap
	}
	return &Tracker{traceCap: cap, tables: map[string]*tableStats{}}
}

func norm(s string) string { return strings.ToLower(s) }

// Observe records one workload event. It is the single ingestion path:
// live queries, WAL replay, and programmatic warm-up (feeding an external
// query log) all flow through here, so replayed counters always match the
// ones the live path produced.
func (t *Tracker) Observe(obs Observation) {
	table := norm(obs.Table)
	if table == "" {
		return
	}
	cols := make([]string, 0, len(obs.Columns))
	seen := map[string]bool{}
	for _, c := range obs.Columns {
		if lc := norm(c); lc != "" && !seen[lc] {
			seen[lc] = true
			cols = append(cols, lc)
		}
	}
	t.mu.Lock()
	defer t.mu.Unlock()

	ts := t.tables[table]
	if ts == nil {
		ts = &tableStats{cols: map[string]uint64{}, pairs: map[string]map[string]uint64{}}
		t.tables[table] = ts
	}
	switch obs.Kind {
	case KindExpand:
		ts.expands++
		t.totals.expands++
	case KindMiss:
		ts.misses++
		t.totals.misses++
		fallthrough
	default: // KindAccess and misses both feed the co-access model
		ts.queries++
		t.totals.queries++
		for _, c := range cols {
			ts.cols[c]++
		}
		// Same-query co-access, both directions.
		for _, a := range cols {
			for _, b := range cols {
				if a != b {
					ts.pair(a, b)
				}
			}
		}
		// Cross-query co-access: a column in the window predicts the
		// columns demanded now (directional — "a then b").
		for _, prev := range ts.window {
			for _, a := range prev {
				for _, b := range cols {
					if a != b {
						ts.pair(a, b)
					}
				}
			}
		}
		ts.window = append(ts.window, cols)
		if len(ts.window) > windowSize {
			ts.window = ts.window[1:]
		}
	}

	t.trace = append(t.trace, Observation{Table: table, Columns: cols, Kind: obs.Kind})
	if len(t.trace) > t.traceCap {
		t.trace = t.trace[len(t.trace)-t.traceCap:]
	}
}

func (ts *tableStats) pair(a, b string) {
	m := ts.pairs[a]
	if m == nil {
		m = map[string]uint64{}
		ts.pairs[a] = m
	}
	m[b]++
}

// Predict returns up to limit columns likely to be demanded next on the
// table, given that trigger was just demanded — ranked by lift, requiring
// minSupport co-occurrences and lift > 1 (a candidate must beat its own
// base rate, or speculating on it is no better than guessing).
func (t *Tracker) Predict(table, trigger string, limit int) []Prediction {
	if limit <= 0 {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	ts := t.tables[norm(table)]
	if ts == nil || ts.queries == 0 {
		return nil
	}
	trig := norm(trigger)
	trigCnt := ts.cols[trig]
	if trigCnt == 0 {
		return nil
	}
	var out []Prediction
	for cand, support := range ts.pairs[trig] {
		if support < minSupport {
			continue
		}
		candCnt := ts.cols[cand]
		if candCnt == 0 {
			continue
		}
		// lift = (support/trigCnt) / (candCnt/queries)
		lift := float64(support) * float64(ts.queries) / (float64(trigCnt) * float64(candCnt))
		if lift <= 1 {
			continue
		}
		out = append(out, Prediction{Column: cand, Support: support, Lift: lift})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Lift != out[j].Lift {
			return out[i].Lift > out[j].Lift
		}
		if out[i].Support != out[j].Support {
			return out[i].Support > out[j].Support
		}
		return out[i].Column < out[j].Column
	})
	if len(out) > limit {
		out = out[:limit]
	}
	return out
}

// Recent returns a copy of the in-memory trace ring, oldest first.
func (t *Tracker) Recent() []Observation {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Observation, len(t.trace))
	copy(out, t.trace)
	return out
}

// Export captures the aggregate counters for a snapshot, tables sorted by
// name for deterministic output.
func (t *Tracker) Export() CounterState {
	t.mu.Lock()
	defer t.mu.Unlock()
	st := CounterState{
		TotalQueries: t.totals.queries,
		TotalMisses:  t.totals.misses,
		TotalExpands: t.totals.expands,
	}
	for name, ts := range t.tables {
		tc := TableCounters{
			Table: name, Queries: ts.queries, Misses: ts.misses, Expands: ts.expands,
			Columns: map[string]uint64{},
			Pairs:   map[string]map[string]uint64{},
		}
		for c, n := range ts.cols {
			tc.Columns[c] = n
		}
		for a, m := range ts.pairs {
			cp := map[string]uint64{}
			for b, n := range m {
				cp[b] = n
			}
			tc.Pairs[a] = cp
		}
		st.Tables = append(st.Tables, tc)
	}
	sort.Slice(st.Tables, func(i, j int) bool { return st.Tables[i].Table < st.Tables[j].Table })
	return st
}

// Import overwrites the aggregate counters with recovered state (the
// restore path; the recent-trace ring stays empty — it is in-memory by
// design). Observations replayed from the WAL after the snapshot land on
// top via Observe.
func (t *Tracker) Import(st CounterState) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.totals.queries = st.TotalQueries
	t.totals.misses = st.TotalMisses
	t.totals.expands = st.TotalExpands
	t.tables = map[string]*tableStats{}
	for _, tc := range st.Tables {
		ts := &tableStats{
			queries: tc.Queries, misses: tc.Misses, expands: tc.Expands,
			cols: map[string]uint64{}, pairs: map[string]map[string]uint64{},
		}
		for c, n := range tc.Columns {
			ts.cols[norm(c)] = n
		}
		for a, m := range tc.Pairs {
			cp := map[string]uint64{}
			for b, n := range m {
				cp[norm(b)] = n
			}
			ts.pairs[norm(a)] = cp
		}
		t.tables[norm(tc.Table)] = ts
	}
}
