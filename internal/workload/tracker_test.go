package workload

import (
	"reflect"
	"testing"
)

func obs(table string, kind Kind, cols ...string) Observation {
	return Observation{Table: table, Columns: cols, Kind: kind}
}

// seedAlternating records n rounds of "query a, then query b" — the
// exploratory pattern the predictor exists for.
func seedAlternating(t *Tracker, n int, a, b string) {
	for i := 0; i < n; i++ {
		t.Observe(obs("movies", KindAccess, a))
		t.Observe(obs("movies", KindAccess, b))
	}
}

func TestPredictFromAlternatingAccess(t *testing.T) {
	tr := NewTracker(0)
	// Noise column with a high base rate: queried constantly on its own,
	// and a couple of times after the comedy runs (so a comedy→year pair
	// exists with real support). Lift must suppress it — P(year) is high
	// everywhere, so following comedy is no evidence.
	for i := 0; i < 20; i++ {
		tr.Observe(obs("movies", KindAccess, "year"))
	}
	seedAlternating(tr, 5, "comedy", "drama")
	for i := 0; i < 2; i++ {
		tr.Observe(obs("movies", KindAccess, "year"))
	}

	preds := tr.Predict("movies", "comedy", 2)
	if len(preds) == 0 {
		t.Fatal("no predictions after 5 comedy→drama rounds")
	}
	if preds[0].Column != "drama" {
		t.Fatalf("top prediction = %q, want drama (all: %+v)", preds[0].Column, preds)
	}
	if preds[0].Lift <= 1 {
		t.Fatalf("drama lift = %g, want > 1", preds[0].Lift)
	}
	if preds[0].Support < minSupport {
		t.Fatalf("drama support = %d, want >= %d", preds[0].Support, minSupport)
	}
}

func TestPredictRequiresSupport(t *testing.T) {
	tr := NewTracker(0)
	// One co-occurrence only: below minSupport, must not predict.
	tr.Observe(obs("movies", KindAccess, "comedy"))
	tr.Observe(obs("movies", KindAccess, "drama"))
	if preds := tr.Predict("movies", "comedy", 4); len(preds) != 0 {
		t.Fatalf("single co-occurrence produced predictions: %+v", preds)
	}
}

func TestPredictUnknownTableOrColumn(t *testing.T) {
	tr := NewTracker(0)
	seedAlternating(tr, 3, "comedy", "drama")
	if p := tr.Predict("books", "comedy", 2); p != nil {
		t.Fatalf("unknown table predicted %+v", p)
	}
	if p := tr.Predict("movies", "nosuch", 2); p != nil {
		t.Fatalf("unknown trigger predicted %+v", p)
	}
	if p := tr.Predict("movies", "comedy", 0); p != nil {
		t.Fatalf("limit 0 predicted %+v", p)
	}
}

func TestMissesFeedTheModel(t *testing.T) {
	tr := NewTracker(0)
	for i := 0; i < 4; i++ {
		tr.Observe(obs("movies", KindMiss, "comedy"))
		tr.Observe(obs("movies", KindMiss, "drama"))
	}
	preds := tr.Predict("movies", "comedy", 1)
	if len(preds) != 1 || preds[0].Column != "drama" {
		t.Fatalf("miss-only history predicted %+v, want drama", preds)
	}
	st := tr.Export()
	if st.TotalMisses != 8 {
		t.Fatalf("TotalMisses = %d, want 8", st.TotalMisses)
	}
}

func TestExpandObservationsDoNotFeedPairs(t *testing.T) {
	tr := NewTracker(0)
	for i := 0; i < 5; i++ {
		tr.Observe(obs("movies", KindExpand, "comedy"))
		tr.Observe(obs("movies", KindExpand, "drama"))
	}
	if preds := tr.Predict("movies", "comedy", 2); len(preds) != 0 {
		t.Fatalf("expand-only history predicted %+v (feedback loop)", preds)
	}
	if st := tr.Export(); st.TotalExpands != 10 || st.TotalQueries != 0 {
		t.Fatalf("expands=%d queries=%d, want 10/0", st.TotalExpands, st.TotalQueries)
	}
}

func TestTraceRingIsBounded(t *testing.T) {
	tr := NewTracker(4)
	for i := 0; i < 10; i++ {
		tr.Observe(obs("movies", KindAccess, "year"))
	}
	if got := len(tr.Recent()); got != 4 {
		t.Fatalf("trace length = %d, want 4", got)
	}
}

func TestExportImportRoundTrip(t *testing.T) {
	tr := NewTracker(0)
	seedAlternating(tr, 3, "Comedy", "Drama") // mixed case normalizes
	tr.Observe(obs("movies", KindMiss, "horror"))
	tr.Observe(obs("movies", KindExpand, "horror"))

	st := tr.Export()
	tr2 := NewTracker(0)
	tr2.Import(st)
	if got := tr2.Export(); !reflect.DeepEqual(got, st) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, st)
	}
	// The model must predict identically from imported counters.
	want := tr.Predict("movies", "comedy", 2)
	got := tr2.Predict("movies", "comedy", 2)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("imported predictions %+v, want %+v", got, want)
	}
	// The trace ring is in-memory only: empty after import.
	if r := tr2.Recent(); len(r) != 0 {
		t.Fatalf("imported tracker has %d trace entries, want 0", len(r))
	}
}

func TestObserveNormalizesAndDedups(t *testing.T) {
	tr := NewTracker(0)
	tr.Observe(obs("Movies", KindAccess, "Year", "year", "NAME"))
	st := tr.Export()
	if len(st.Tables) != 1 || st.Tables[0].Table != "movies" {
		t.Fatalf("tables = %+v, want one entry 'movies'", st.Tables)
	}
	cols := st.Tables[0].Columns
	if cols["year"] != 1 || cols["name"] != 1 || len(cols) != 2 {
		t.Fatalf("columns = %+v, want year:1 name:1", cols)
	}
}
