// Workload subsystem acceptance tests (DESIGN.md §13): speculative
// pre-expansion merging into the demand HIT group's single charge, the
// speculative budget cap, semantic-result-cache invalidation across every
// mutation class, restart semantics (durable counters, cold cache), and
// the cached-read speedup bar.
package crowddb_test

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"crowddb"
	"crowddb/internal/core"
	"crowddb/internal/crowd"
	"crowddb/internal/storage"
)

// speculativeDB is batchBenchDB plus a speculative budget: one table,
// four registered CROWD-method expandable columns, batching window open.
func speculativeDB(tb testing.TB, seed int64, window time.Duration, specBudget float64) *crowddb.DB {
	tb.Helper()
	rng := rand.New(rand.NewSource(seed))
	pop := crowd.NewPopulation(crowd.PopulationConfig{Workers: 40}, rng)
	items := func(question string) ([]crowd.Item, error) {
		out := make([]crowd.Item, batchBenchRows)
		for i := range out {
			out[i] = crowd.Item{ID: i, Truth: i%2 == 0, Popularity: 1}
		}
		return out, nil
	}
	db, err := crowddb.Open(crowddb.Options{
		Service:           crowddb.NewSimulatedCrowd(pop, items, rng),
		BatchWindow:       window,
		SpeculativeBudget: specBudget,
	})
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(func() { _ = db.Close() })
	if _, _, err := db.ExecSQL(`CREATE TABLE movies (movie_id INTEGER, name TEXT)`); err != nil {
		tb.Fatal(err)
	}
	tbl, _ := db.Catalog().Get("movies")
	for i := 0; i < batchBenchRows; i++ {
		if err := tbl.Insert(storage.Int(int64(i)), storage.Text(fmt.Sprintf("movie-%02d", i))); err != nil {
			tb.Fatal(err)
		}
	}
	for _, col := range batchBenchColumns {
		db.RegisterExpandable("movies", col, storage.KindBool,
			crowddb.ExpandOptions{Method: "CROWD", Assignments: 5})
	}
	return db
}

// teachComedyThenDrama warms the co-access model with the exploratory
// pattern the predictor exists for: whoever queries comedy queries drama
// a query later.
func teachComedyThenDrama(db *crowddb.DB, rounds int) {
	for i := 0; i < rounds; i++ {
		db.RecordObservation(crowddb.WorkloadObservation{
			Table: "movies", Columns: []string{"comedy"}, Kind: crowddb.WorkloadAccess})
		db.RecordObservation(crowddb.WorkloadObservation{
			Table: "movies", Columns: []string{"drama"}, Kind: crowddb.WorkloadAccess})
	}
}

// waitAllJobs waits for every expansion job the DB has ever admitted.
func waitAllJobs(tb testing.TB, db *crowddb.DB) {
	tb.Helper()
	for _, st := range db.Jobs() {
		job, ok := db.JobHandle(st.ID)
		if !ok {
			continue
		}
		if _, err := job.Wait(context.Background()); err != nil {
			tb.Fatalf("job %s (%s): %v", st.ID, st.Origin, err)
		}
	}
}

// TestSpeculativePreExpansionSharesOneCharge is the tentpole's ledger
// acceptance bar: after the model has seen "comedy then drama", a demand
// expansion of comedy must carry a speculative expansion of drama inside
// the SAME batch window, so the marketplace is engaged (and charged)
// exactly once for both columns.
func TestSpeculativePreExpansionSharesOneCharge(t *testing.T) {
	const cap = 2.0
	db := speculativeDB(t, 42, 30*time.Millisecond, cap)
	teachComedyThenDrama(db, 4)

	_, job, err := db.ExecSQLAsync(`SELECT name FROM movies WHERE comedy = true`)
	if err != nil {
		t.Fatal(err)
	}
	if job == nil {
		t.Fatal("comedy query did not trigger an expansion")
	}
	waitAllJobs(t, db)

	// One combined HIT-group charge for demand + speculative.
	if led := db.Ledger(); led.Jobs != 1 {
		t.Fatalf("marketplace charged %d times, want 1 combined charge (ledger %+v)", led.Jobs, led)
	}

	// Both jobs exist, correctly origin-tagged.
	origins := map[string]int{}
	for _, st := range db.Jobs() {
		origins[st.Origin]++
	}
	if origins[core.OriginDemand] != 1 || origins[core.OriginSpeculative] != 1 {
		t.Fatalf("job origins = %v, want one demand + one speculative", origins)
	}

	// The speculative column is already filled: querying drama now must
	// answer immediately, with no further expansion or charge.
	res, _, err := db.ExecSQL(`SELECT name FROM movies WHERE drama = true`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("speculatively expanded drama returned no rows")
	}
	if led := db.Ledger(); led.Jobs != 1 {
		t.Fatalf("drama query re-engaged the crowd: %d charges", led.Jobs)
	}

	// Speculative spend is accounted under its own key and within cap.
	b, ok := db.Budget(core.SpeculativeBudgetKey)
	if !ok {
		t.Fatal("no speculative budget account")
	}
	if b.Spent <= 0 || b.Spent > cap {
		t.Fatalf("speculative spend $%.4f outside (0, %.2f]", b.Spent, cap)
	}
}

// TestSpeculationRespectsBudgetAndNeverBlocksDemand: with a cap too small
// for even one speculative run, the predictor must stand down entirely —
// the demand expansion still completes, nothing is spent under the
// speculative key, and no speculative job is ever admitted.
func TestSpeculationRespectsBudgetAndNeverBlocksDemand(t *testing.T) {
	db := speculativeDB(t, 43, 30*time.Millisecond, 0.01) // projected cost per column ≈ $0.40
	teachComedyThenDrama(db, 4)

	res, _, err := db.ExecSQL(`SELECT name FROM movies WHERE comedy = true`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("demand expansion returned no rows")
	}
	waitAllJobs(t, db)

	for _, st := range db.Jobs() {
		if st.Origin == core.OriginSpeculative {
			t.Fatalf("speculative job %s admitted despite a $0.01 cap", st.ID)
		}
	}
	if b, ok := db.Budget(core.SpeculativeBudgetKey); ok && b.Spent != 0 {
		t.Fatalf("speculative key spent $%.4f under a cap it cannot afford", b.Spent)
	}
	// Drama was not pre-expanded: the column must still be virtual.
	tbl, _ := db.Catalog().Get("movies")
	if _, exists := tbl.Schema().Lookup("drama"); exists {
		t.Fatal("drama was expanded despite the unaffordable cap")
	}
}

// TestCacheHitMutateMiss walks the semantic result cache through every
// mutation class the ISSUE names — INSERT, FillColumn, CREATE INDEX,
// DROP INDEX — asserting hit → mutate → miss with live data each time.
func TestCacheHitMutateMiss(t *testing.T) {
	db := crowddb.New(nil)
	t.Cleanup(func() { _ = db.Close() })
	mustExec := func(sql string) *crowddb.Result {
		t.Helper()
		res, _, err := db.ExecSQL(sql)
		if err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
		return res
	}
	mustExec(`CREATE TABLE movies (movie_id INTEGER, name TEXT, year INTEGER)`)
	mustExec(`INSERT INTO movies VALUES (1, 'alpha', 2000), (2, 'beta', 2001), (3, 'gamma', 2002)`)

	const q = `SELECT name, year FROM movies ORDER BY year`
	wantStats := func(hits, misses uint64, rows, n int) {
		t.Helper()
		st := db.CacheStats()
		if st.Hits != hits || st.Misses != misses {
			t.Fatalf("step %d: cache hits/misses = %d/%d, want %d/%d", n, st.Hits, st.Misses, hits, misses)
		}
		if res := mustExec(q); len(res.Rows) != rows {
			t.Fatalf("step %d: %d rows, want %d", n, len(res.Rows), rows)
		}
	}

	wantStats(0, 0, 3, 1) // cold: miss, fills
	wantStats(0, 1, 3, 2) // warm: hit
	st := db.CacheStats()
	if st.Hits != 1 {
		t.Fatalf("second read did not hit the cache: %+v", st)
	}

	// INSERT invalidates.
	mustExec(`INSERT INTO movies VALUES (4, 'delta', 1999)`)
	res := mustExec(q)
	if len(res.Rows) != 4 {
		t.Fatalf("post-insert read served %d rows — a stale cache entry", len(res.Rows))
	}

	// FillColumn (the crowd-fill storage primitive) invalidates.
	tbl, _ := db.Catalog().Get("movies")
	years := []storage.Value{storage.Int(1990), storage.Int(1991), storage.Int(1992), storage.Int(1993)}
	mustExec(q) // warm again
	if err := tbl.FillColumn("year", years); err != nil {
		t.Fatal(err)
	}
	res = mustExec(q)
	if y, _ := res.Rows[0][1].AsInt(); y != 1990 {
		t.Fatalf("post-fill read served year %d — a stale cache entry", y)
	}

	// CREATE INDEX and DROP INDEX both invalidate (plan shape may
	// change). Stale entries are counted lazily: the seq bump lands at
	// DDL time, the invalidation registers on the entry's next Get.
	mustExec(q) // warm
	before := db.CacheStats()
	mustExec(`CREATE INDEX by_year ON movies (year)`)
	mustExec(q)
	if got := db.CacheStats(); got.Invalidations <= before.Invalidations || got.Misses <= before.Misses {
		t.Fatalf("read after CREATE INDEX was served stale: %+v -> %+v", before, got)
	}
	mustExec(q) // warm again
	before = db.CacheStats()
	mustExec(`DROP INDEX by_year ON movies`)
	if res = mustExec(q); len(res.Rows) != 4 {
		t.Fatalf("post-drop read served %d rows", len(res.Rows))
	}
	if got := db.CacheStats(); got.Invalidations <= before.Invalidations || got.Misses <= before.Misses {
		t.Fatalf("read after DROP INDEX was served stale: %+v -> %+v", before, got)
	}

	// The nocache escape hatch bypasses without disturbing entries.
	hits := db.CacheStats().Hits
	if _, _, err := db.ExecSQLNoCache(q); err != nil {
		t.Fatal(err)
	}
	if got := db.CacheStats().Hits; got != hits {
		t.Fatalf("ExecSQLNoCache touched the cache (hits %d -> %d)", hits, got)
	}
}

// TestWorkloadSurvivesRestartCacheCold: workload counters are durable
// (snapshot + typed WAL records), the dropped index stays dropped, and
// the result cache restarts cold — recovered state must never serve a
// stale cached row.
func TestWorkloadSurvivesRestartCacheCold(t *testing.T) {
	dir := t.TempDir()
	db, err := crowddb.Open(crowddb.Options{DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	exec := func(sql string) {
		t.Helper()
		if _, _, err := db.ExecSQL(sql); err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
	}
	exec(`CREATE TABLE movies (movie_id INTEGER, name TEXT, year INTEGER)`)
	exec(`INSERT INTO movies VALUES (1, 'alpha', 2000), (2, 'beta', 2001)`)
	exec(`CREATE INDEX by_year ON movies (year) USING HASH`)
	exec(`SELECT name FROM movies WHERE year = 2000`)
	exec(`SELECT name FROM movies WHERE year = 2000`) // cache hit
	if st := db.CacheStats(); st.Hits == 0 {
		t.Fatalf("no cache hit before restart: %+v", st)
	}
	// Snapshot mid-stream so recovery exercises snapshot restore AND WAL
	// replay of post-snapshot workload_obs / drop_index records.
	if _, err := db.Snapshot(); err != nil {
		t.Fatal(err)
	}
	exec(`DROP INDEX by_year ON movies`)
	exec(`SELECT name FROM movies WHERE year = 2001`)
	exec(`INSERT INTO movies VALUES (3, 'gamma', 2002)`)
	wantQueries := db.Workload().Counters.TotalQueries
	if wantQueries == 0 {
		t.Fatal("tracker recorded no queries")
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db, err = crowddb.Open(crowddb.Options{DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = db.Close() })

	if idx := db.TableIndexes("movies"); len(idx) != 0 {
		t.Fatalf("dropped index resurrected on recovery: %+v", idx)
	}
	if got := db.Workload().Counters.TotalQueries; got != wantQueries {
		t.Fatalf("recovered TotalQueries = %d, want %d", got, wantQueries)
	}
	if st := db.CacheStats(); st.Entries != 0 || st.Hits != 0 {
		t.Fatalf("cache not cold after restart: %+v", st)
	}
	res, _, err := db.ExecSQL(`SELECT name FROM movies ORDER BY year`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("recovered read returned %d rows, want 3", len(res.Rows))
	}
	if st := db.CacheStats(); st.Misses != 1 {
		t.Fatalf("first post-restart read was not a cache miss: %+v", st)
	}
}

// TestConcurrentCacheReadsDuringCrowdFill races cached and uncached reads
// against an in-flight crowd expansion that mutates the table (AddColumn
// + FillColumn). Run under -race in the nightly sweep; correctness bar
// here: no errors, and the post-fill read sees the expanded column.
func TestConcurrentCacheReadsDuringCrowdFill(t *testing.T) {
	db := speculativeDB(t, 44, 10*time.Millisecond, 0)

	_, job, err := db.ExecSQLAsync(`SELECT name FROM movies WHERE comedy = true`)
	if err != nil {
		t.Fatal(err)
	}
	if job == nil {
		t.Fatal("no expansion job")
	}

	var wg sync.WaitGroup
	var reads atomic.Int64
	stop := make(chan struct{})
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				var err error
				if g%2 == 0 {
					_, _, err = db.ExecSQL(`SELECT name FROM movies ORDER BY name LIMIT 5`)
				} else {
					_, _, err = db.ExecSQLNoCache(`SELECT name FROM movies ORDER BY name LIMIT 5`)
				}
				if err != nil {
					t.Error(err)
					return
				}
				reads.Add(1)
			}
		}(g)
	}
	if _, err := job.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()
	if reads.Load() == 0 {
		t.Fatal("no reads completed during the fill")
	}
	res, _, err := db.ExecSQL(`SELECT name FROM movies WHERE comedy = true`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("expanded column returned no rows after the fill")
	}
}

// --- cached-read speedup (acceptance: ≥20× vs uncached) ---

const cachedSelectRows = 30_000

// cachedSelectDB seeds a table large enough that the uncached TopN scan
// costs real work.
func cachedSelectDB(tb testing.TB) *crowddb.DB {
	tb.Helper()
	db := crowddb.New(nil)
	tb.Cleanup(func() { _ = db.Close() })
	if _, _, err := db.ExecSQL(`CREATE TABLE big (id INTEGER, score FLOAT)`); err != nil {
		tb.Fatal(err)
	}
	tbl, _ := db.Catalog().Get("big")
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < cachedSelectRows; i++ {
		if err := tbl.Insert(storage.Int(int64(i)), storage.Float(rng.Float64()*1000)); err != nil {
			tb.Fatal(err)
		}
	}
	return db
}

const cachedSelectSQL = `SELECT id, score FROM big ORDER BY score DESC LIMIT 10`

// TestCachedSelectAtLeast20xFaster is the cache's acceptance bar: a hot
// repeated SELECT must run ≥20× faster than the same statement with the
// cache bypassed — and a single mutation must drop it back to live data.
func TestCachedSelectAtLeast20xFaster(t *testing.T) {
	db := cachedSelectDB(t)
	if _, _, err := db.ExecSQL(cachedSelectSQL); err != nil { // warm
		t.Fatal(err)
	}
	const iters = 15
	timeIt := func(f func() error) time.Duration {
		t.Helper()
		start := time.Now()
		for i := 0; i < iters; i++ {
			if err := f(); err != nil {
				t.Fatal(err)
			}
		}
		return time.Since(start)
	}
	cached := timeIt(func() error { _, _, err := db.ExecSQL(cachedSelectSQL); return err })
	uncached := timeIt(func() error { _, _, err := db.ExecSQLNoCache(cachedSelectSQL); return err })
	if cached*20 > uncached {
		t.Fatalf("cached %v vs uncached %v: less than the required 20x speedup", cached, uncached)
	}
	if st := db.CacheStats(); st.Hits < iters {
		t.Fatalf("cached loop did not hit the cache: %+v", st)
	}

	// Mutation-invalidation proof: one insert, and the next read is a
	// recomputed miss over the live 30_001 rows.
	misses := db.CacheStats().Misses
	if _, _, err := db.ExecSQL(`INSERT INTO big VALUES (999999, 5000.0)`); err != nil {
		t.Fatal(err)
	}
	res, _, err := db.ExecSQL(cachedSelectSQL)
	if err != nil {
		t.Fatal(err)
	}
	if id, _ := res.Rows[0][0].AsInt(); id != 999999 {
		t.Fatalf("post-insert top row id = %d — stale cached result", id)
	}
	if got := db.CacheStats().Misses; got != misses+1 {
		t.Fatalf("post-insert read was not a miss (misses %d -> %d)", misses, got)
	}
}

// BenchmarkCachedSelect measures the hot cached-read path (guarded in
// BENCH_baseline.json); BenchmarkUncachedSelectBaseline is the identical
// statement with the cache bypassed, for the speedup comparison.
func BenchmarkCachedSelect(b *testing.B) {
	db := cachedSelectDB(b)
	if _, _, err := db.ExecSQL(cachedSelectSQL); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, _, err := db.ExecSQL(cachedSelectSQL)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) != 10 {
			b.Fatalf("rows = %d", len(res.Rows))
		}
	}
}

func BenchmarkUncachedSelectBaseline(b *testing.B) {
	db := cachedSelectDB(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, _, err := db.ExecSQLNoCache(cachedSelectSQL)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) != 10 {
			b.Fatalf("rows = %d", len(res.Rows))
		}
	}
	b.ReportMetric(float64(cachedSelectRows), "rows-scanned/op")
}

// BenchmarkSpeculativeHitMerge measures the end-to-end demand+speculative
// cycle: warm model, demand-expand comedy, speculation rides the same
// batch window, everything settles. Reports marketplace charges (the
// merge makes it 1) and the columns filled per charge.
func BenchmarkSpeculativeHitMerge(b *testing.B) {
	var charges, filled float64
	for i := 0; i < b.N; i++ {
		db := speculativeDB(b, int64(200+i), 20*time.Millisecond, 2.0)
		teachComedyThenDrama(db, 4)
		_, job, err := db.ExecSQLAsync(`SELECT name FROM movies WHERE comedy = true`)
		if err != nil {
			b.Fatal(err)
		}
		if job == nil {
			b.Fatal("no expansion job")
		}
		waitAllJobs(b, db)
		charges = float64(db.Ledger().Jobs)
		tbl, _ := db.Catalog().Get("movies")
		filled = 0
		for _, col := range []string{"comedy", "drama"} {
			if _, ok := tbl.Schema().Lookup(col); ok {
				filled++
			}
		}
	}
	b.ReportMetric(charges, "marketplace-charges")
	b.ReportMetric(filled, "columns-filled")
	if charges > 0 {
		b.ReportMetric(filled/charges, "columns-per-charge")
	}
}
